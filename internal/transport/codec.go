package transport

// Wire codec negotiation and the binary frame layout (DESIGN.md §12).
//
// Every session opens in gob: the Hello and the spec reply are the
// bootstrap messages and always cross gob-encoded, so a peer that knows
// nothing about codecs still completes the handshake (its gob decoder
// drops the unknown negotiation fields). The Hello carries the codecs
// the client can speak; the spec reply carries the server's grant; both
// sides switch codecs at that quiescent point, before any protocol
// message crosses.
//
// Binary frames are length-prefixed and type-tagged:
//
//	+---------+---------+-----------------+-----------------+=========+
//	| version |   tag   |  stream (u32BE) |  length (u32BE) | payload |
//	|  1 byte |  1 byte |     4 bytes     |     4 bytes     | n bytes |
//	+---------+---------+-----------------+-----------------+=========+
//
// version is wireVersion (0x01); any other value is rejected with
// ErrWireVersion before the payload is read, so version skew fails fast
// instead of hanging. tag identifies the payload type (tag 0 carries a
// remote error string instead of a message). length bounds the payload
// at maxFramePayload; oversized frames are rejected without allocation.

import (
	"errors"
	"fmt"
)

// Codec names, as negotiated in the Hello/spec exchange.
const (
	// CodecGob is the legacy reflection-driven envelope encoding. Every
	// peer speaks it; it is the bootstrap codec and the fallback grant.
	CodecGob = "gob"
	// CodecBinary is the hand-rolled versioned binary frame encoding.
	CodecBinary = "binary"
)

// wireVersion is the binary frame version this build speaks.
const wireVersion byte = 0x01

// frameHeaderSize is the fixed binary frame header:
// version(1) + tag(1) + stream(4) + length(4).
const frameHeaderSize = 10

// maxFramePayload bounds a binary frame payload. It matches the decode
// bound of the wire primitives; a header announcing more is rejected
// before any payload byte is read.
const maxFramePayload = 64 << 20

// ErrWireVersion reports a binary frame whose version byte does not
// match this build's wireVersion.
var ErrWireVersion = errors.New("transport: wire version mismatch")

// ErrWireCodec reports an unknown or un-negotiated wire codec name.
var ErrWireCodec = errors.New("transport: unsupported wire codec")

// codec identifiers for Conn's switchable encode/decode paths.
type codecID uint8

const (
	codecGobID codecID = iota
	codecBinaryID
)

// codecByName resolves a negotiated codec name ("" means gob, the
// legacy default that peers without the field implicitly select).
func codecByName(name string) (codecID, error) {
	switch name {
	case "", CodecGob:
		return codecGobID, nil
	case CodecBinary:
		return codecBinaryID, nil
	default:
		return codecGobID, fmt.Errorf("%w: %q", ErrWireCodec, name)
	}
}

// ResolveWireCodec validates a codec name from configuration. The empty
// string is valid and keeps the default negotiation (binary preferred,
// gob fallback).
func ResolveWireCodec(name string) (string, error) {
	if _, err := codecByName(name); err != nil {
		return "", err
	}
	return name, nil
}

// defaultWireCodecs is the offer/support list of a current build, in
// preference order.
func defaultWireCodecs() []string { return []string{CodecBinary, CodecGob} }

// grantWireCodec picks the session codec from the client's offer and the
// server's support list: the first supported codec the client offered,
// falling back to gob (which every peer speaks). The returned grant is
// "" for gob so legacy clients — which never read the field — see the
// zero value they expect.
func grantWireCodec(offered, supported []string) string {
	for _, name := range supported {
		if name == CodecGob {
			return ""
		}
		for _, o := range offered {
			if o == name {
				return name
			}
		}
	}
	return ""
}

// validateGrant checks the server's codec grant against what the client
// offered: a server must never select a codec the client cannot speak.
func validateGrant(grant string, offered []string) error {
	if grant == "" || grant == CodecGob {
		return nil
	}
	for _, o := range offered {
		if o == grant {
			return nil
		}
	}
	return fmt.Errorf("%w: server granted %q, offered %v", ErrWireCodec, grant, offered)
}
