package transport

// RecvAnyForTest exposes the untyped receive path so the golden-wire
// conformance tests can replay recorded transcripts without hardcoding
// each service's message sequence.
func (c *Conn) RecvAnyForTest() (any, error) { return c.recvAny() }

// WarmGobForTest forces the canonical gob type-ID warm-up and reports
// whether any wire type failed to encode.
func WarmGobForTest() error {
	registerTypes()
	return warmErr
}
