package transport

import (
	"errors"
	"testing"

	"repro/internal/ot"
)

// TestGrantPadFunc pins the server-side grant policy: first supported pad
// the client offered wins, with SHA-256 (encoded as the empty grant) as
// the universal fallback.
func TestGrantPadFunc(t *testing.T) {
	cases := []struct {
		name      string
		offered   []string
		supported []string
		want      string
	}{
		{"legacy client, default server", nil, defaultPadFuncs(), ""},
		{"aes offered, default server", []string{"aes"}, defaultPadFuncs(), "aes"},
		{"aes offered, sha-pinned server", []string{"aes"}, []string{"sha256"}, ""},
		{"aes offered, sha-preferring server", []string{"aes"}, []string{"sha256", "aes"}, ""},
		{"unknown offer", []string{"chacha"}, defaultPadFuncs(), ""},
		{"mixed offer", []string{"chacha", "aes"}, defaultPadFuncs(), "aes"},
	}
	for _, tc := range cases {
		if got := grantPadFunc(tc.offered, tc.supported); got != tc.want {
			t.Errorf("%s: grantPadFunc(%v, %v) = %q, want %q",
				tc.name, tc.offered, tc.supported, got, tc.want)
		}
	}
}

// TestValidatePadGrant pins the client-side check: a server may grant the
// legacy pad to anyone, but a non-legacy pad only if this client offered
// it.
func TestValidatePadGrant(t *testing.T) {
	if err := validatePadGrant("", nil); err != nil {
		t.Errorf("empty grant to legacy client: %v", err)
	}
	if err := validatePadGrant("sha256", nil); err != nil {
		t.Errorf("explicit sha256 grant to legacy client: %v", err)
	}
	if err := validatePadGrant("aes", []string{"aes"}); err != nil {
		t.Errorf("aes grant to aes-offering client: %v", err)
	}
	if err := validatePadGrant("aes", nil); !errors.Is(err, ot.ErrPadFunc) {
		t.Errorf("un-offered aes grant: got %v, want ErrPadFunc", err)
	}
	if err := validatePadGrant("aes", []string{"sha256"}); !errors.Is(err, ot.ErrPadFunc) {
		t.Errorf("aes grant against sha-only offer: got %v, want ErrPadFunc", err)
	}
}

// TestOfferedPads pins the client offer policy: pads are strictly opt-in,
// so default and explicit-sha configurations send no offer at all and the
// Hello stays byte-identical to pre-negotiation builds.
func TestOfferedPads(t *testing.T) {
	if got := (Options{}).offeredPads(); got != nil {
		t.Errorf("default options offered %v, want nil", got)
	}
	if got := (Options{PadFunc: "sha256"}).offeredPads(); got != nil {
		t.Errorf("explicit sha256 offered %v, want nil", got)
	}
	got := (Options{PadFunc: "aes"}).offeredPads()
	if len(got) != 1 || got[0] != "aes" {
		t.Errorf("aes option offered %v, want [aes]", got)
	}
}
