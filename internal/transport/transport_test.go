package transport_test

import (
	"crypto/rand"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/svm"
	"repro/internal/transport"
)

func trainLinear(t *testing.T, seed uint64) (*svm.Model, *dataset.Dataset) {
	t.Helper()
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize = 60
	spec.TestSize = 30
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	return model, test
}

func quietServer(t *testing.T, trainer *classify.Trainer) *transport.Server {
	t.Helper()
	srv := transport.NewServer(trainer)
	// Server goroutines may outlive the test body; a t.Logf here would
	// panic ("Log in goroutine after test has completed").
	srv.Logf = nil
	return srv
}

// TestClassifyOverPipe drives a full classification session over an
// in-memory duplex connection.
func TestClassifyOverPipe(t *testing.T) {
	model, test := trainLinear(t, 11)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()

	cc, err := transport.NewClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want, err := model.Classify(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		d, err := model.Decision(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		got, err := cc.Classify(test.X[i])
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: got %d, want %d", i, got, want)
		}
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestClassifyOverTCPConcurrent runs several concurrent clients against a
// real TCP listener.
func TestClassifyOverTCPConcurrent(t *testing.T) {
	model, test := trainLinear(t, 12)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	const clients = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			cc, err := transport.DialClassify(ln.Addr().String(), 5*time.Second, rand.Reader)
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = cc.Close() }()
			sample := test.X[idx]
			want, err := model.Classify(sample)
			if err != nil {
				errCh <- err
				return
			}
			got, err := cc.Classify(sample)
			if err != nil {
				errCh <- err
				return
			}
			if got != want {
				errCh <- &mismatchError{got: got, want: want}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type mismatchError struct{ got, want int }

func (e *mismatchError) Error() string { return "label mismatch" }

// TestSimilarityOverPipe drives the three-round similarity protocol over
// an in-memory connection and checks it against the plaintext metric.
func TestSimilarityOverPipe(t *testing.T) {
	modelA, _ := trainLinear(t, 13)
	modelB, _ := trainLinear(t, 14)
	wA, err := modelA.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	wB, err := modelB.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	params := similarity.Params{Group: ot.Group512Test()}
	trainer, err := classify.NewTrainer(modelA, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	srv.EnableSimilarity(wA, modelA.Bias, params)

	serverSide, clientSide := net.Pipe()
	go srv.ServeConn(serverSide)

	got, err := transport.EvaluateSimilarity(clientSide, wB, modelB.Bias, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	want, err := similarity.EvaluateLinear(wA, modelA.Bias, wB, modelB.Bias, similarity.DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.TSquared-want.TSquared) > 1e-4*(1+math.Abs(want.TSquared)) {
		t.Fatalf("T² over transport %g, plaintext %g", got.TSquared, want.TSquared)
	}
}

// TestUnknownServiceRejected checks the handshake's failure path.
func TestUnknownServiceRejected(t *testing.T) {
	model, _ := trainLinear(t, 15)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()

	conn := transport.NewConn(clientSide)
	if err := conn.Send(&transport.Hello{Service: "nonsense"}); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.Recv[*transport.Done](conn); err == nil {
		t.Fatal("expected an error for unknown service")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestKernelSimilarityOverPipe drives the kernelized similarity protocol
// over an in-memory connection against the plaintext kernel metric.
func TestKernelSimilarityOverPipe(t *testing.T) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize, spec.TestSize = 40, 10
	trainA, _, err := dataset.Generate(spec, dataset.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	trainB, _, err := dataset.Generate(spec, dataset.Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	kern := svm.PaperPolynomial(spec.Dim)
	modelA, err := svm.Train(trainA.X, trainA.Y, svm.Config{Kernel: kern, C: 10})
	if err != nil {
		t.Fatal(err)
	}
	modelB, err := svm.Train(trainB.X, trainB.Y, svm.Config{Kernel: kern, C: 10})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := classify.NewTrainer(modelA, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	srv.EnableKernelSimilarity(similarity.Params{Group: ot.Group512Test()})

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()

	got, err := transport.EvaluateKernelSimilarity(clientSide, modelB, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	want, err := similarity.EvaluateKernel(modelA, modelB, similarity.DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.TSquared-want.TSquared) > 2e-3*(1+math.Abs(want.TSquared)) {
		t.Fatalf("kernel T² over transport %g, plaintext %g", got.TSquared, want.TSquared)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestTruncatedStreamErrors: a mid-protocol connection drop must surface
// as an error on both sides, never a hang or panic.
func TestTruncatedStreamErrors(t *testing.T) {
	model, _ := trainLinear(t, 23)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()

	cc, err := transport.NewClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the connection and try to classify.
	_ = clientSide.Close()
	if _, err := cc.Classify(make([]float64, 8)); err == nil {
		t.Fatal("classification over a dead connection should fail")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server session did not end after connection drop")
	}
}

// TestSimilarityServiceNotEnabled: requesting similarity from a server
// that only classifies must produce a remote error.
func TestSimilarityServiceNotEnabled(t *testing.T) {
	model, _ := trainLinear(t, 24)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	w, err := model.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := transport.EvaluateSimilarity(clientSide, w, model.Bias, rand.Reader); err == nil {
		t.Fatal("similarity against a classify-only server should fail")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestRecvRejectsWrongType: the typed layer must reject out-of-order
// message types cleanly.
func TestRecvRejectsWrongType(t *testing.T) {
	a, b := net.Pipe()
	ca := transport.NewConn(a)
	cb := transport.NewConn(b)
	go func() { _ = ca.Send(&transport.Done{}) }()
	if _, err := transport.Recv[*transport.Hello](cb); err == nil {
		t.Fatal("wrong payload type should fail")
	}
	_ = ca.Close()
	_ = cb.Close()
}

// TestRemoteErrorSurfaces: a SendErr on one side surfaces as ErrRemote on
// the other.
func TestRemoteErrorSurfaces(t *testing.T) {
	a, b := net.Pipe()
	ca := transport.NewConn(a)
	cb := transport.NewConn(b)
	go func() { _ = ca.SendErr(errSentinel) }()
	_, err := transport.Recv[*transport.Hello](cb)
	if err == nil || !errors.Is(err, transport.ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	_ = ca.Close()
	_ = cb.Close()
}

var errSentinel = errors.New("sentinel failure")

// TestFastClassifyOverPipe: the IKNP fast session over an in-memory
// connection must label like the plaintext model across several queries.
func TestFastClassifyOverPipe(t *testing.T) {
	model, test := trainLinear(t, 33)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()

	fc, err := transport.NewFastClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i < test.Len() && checked < 6; i++ {
		d, err := model.Decision(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		want, err := model.Classify(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := fc.Classify(test.X[i])
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: fast label %d, want %d", i, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestDialFailures: dialing a dead address must fail fast and cleanly for
// every client constructor.
func TestDialFailures(t *testing.T) {
	const dead = "127.0.0.1:1" // reserved port, nothing listens
	if _, err := transport.DialClassify(dead, 200*time.Millisecond, rand.Reader); err == nil {
		t.Fatal("DialClassify to dead address should fail")
	}
	if _, err := transport.DialClassifyFast(dead, 200*time.Millisecond, rand.Reader); err == nil {
		t.Fatal("DialClassifyFast to dead address should fail")
	}
	if _, err := transport.DialSimilarity(dead, []float64{1, 0}, 0, 200*time.Millisecond, rand.Reader); err == nil {
		t.Fatal("DialSimilarity to dead address should fail")
	}
}
