// Package transport carries the protocol state machines over real
// connections: a typed message layer (gob-encoded envelopes over any
// io.ReadWriteCloser) plus a TCP server and client for the classification
// and similarity protocols. The same code paths drive in-memory net.Pipe
// connections in tests and TCP sockets in the cmd/ binaries, making the
// system an actual distributed deployment rather than a single-process
// simulation.
package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
)

// envelope wraps every message with an error channel: a party that fails
// mid-protocol reports the failure instead of going silent.
type envelope struct {
	Err     string
	Payload any
}

var registerOnce sync.Once

func registerTypes() {
	registerOnce.Do(func() {
		gob.Register(&classify.Spec{})
		gob.Register(&ompe.EvalRequest{})
		gob.Register(&ot.BatchSetup{})
		gob.Register(&ot.BatchChoice{})
		gob.Register(&ot.BatchTransfer{})
		gob.Register(&similarity.Spec{})
		gob.Register(&similarity.ClearShare{})
		gob.Register(&similarity.KernelSpec{})
		gob.Register(&similarity.KernelClearShare{})
		gob.Register(&similarity.AreaScale{})
		gob.Register(&Hello{})
		gob.Register(&RoundHeader{})
		gob.Register(&Done{})
		gob.Register(&ot.IKNPBaseSetup{})
		gob.Register(&ot.IKNPBaseChoice{})
		gob.Register(&ot.IKNPBaseTransfer{})
		gob.Register(&ompe.FastRequest{})
		gob.Register(&ompe.FastResponse{})
	})
}

// Hello opens a session and selects the service.
type Hello struct {
	// Service is one of "classify", "classify-fast", "similarity-linear",
	// "similarity-kernel".
	Service string
}

// RoundHeader precedes each OMPE round of the similarity protocol.
type RoundHeader struct {
	Round similarity.Round
}

// Done signals the clean end of a session.
type Done struct{}

// ErrRemote wraps an error reported by the peer.
var ErrRemote = errors.New("transport: remote error")

// ErrTimeout wraps any send/receive that failed because a message
// deadline passed: errors.Is(err, ErrTimeout) distinguishes "the network
// went quiet" from protocol failures.
var ErrTimeout = errors.New("transport: deadline exceeded")

// ErrCanceled wraps failures caused by context cancellation.
var ErrCanceled = errors.New("transport: canceled")

// wrapIO classifies a raw stream error: deadline expiries (from net.Conn
// deadlines or deadline-aware wrappers) gain the ErrTimeout mark so
// callers can branch on timeout-vs-protocol failure.
func wrapIO(op string, err error) error {
	var nerr interface{ Timeout() bool }
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &nerr) && nerr.Timeout()) {
		return fmt.Errorf("transport: %s: %w: %v", op, ErrTimeout, err)
	}
	return fmt.Errorf("transport: %s: %w", op, err)
}

// Conn is a typed, framed protocol connection.
type Conn struct {
	rw  io.ReadWriteCloser
	enc *gob.Encoder
	dec *gob.Decoder

	// deadline, when non-zero, bounds each message exchange on net.Conn
	// transports.
	deadline time.Duration
}

// deadliner matches net.Conn's deadline surface.
type deadliner interface {
	SetDeadline(time.Time) error
}

// countingStream counts wire bytes at the transport envelope. Counting
// happens per Read/Write call (one recorder call each), so the disabled
// path costs a single no-op interface call per syscall-sized chunk.
type countingStream struct {
	rw io.ReadWriteCloser
}

func (cs countingStream) Read(p []byte) (int, error) {
	n, err := cs.rw.Read(p)
	if n > 0 {
		obs.Add(obs.CtrBytesIn, int64(n))
	}
	return n, err
}

func (cs countingStream) Write(p []byte) (int, error) {
	n, err := cs.rw.Write(p)
	if n > 0 {
		obs.Add(obs.CtrBytesOut, int64(n))
	}
	return n, err
}

func (cs countingStream) Close() error { return cs.rw.Close() }

// deadlineCountingStream additionally forwards the deadline surface, so
// wrapping never hides a transport's deadline capability (RunContext
// falls back to Close-on-cancel only for genuinely deadline-less
// streams).
type deadlineCountingStream struct {
	countingStream
}

func (cs deadlineCountingStream) SetDeadline(t time.Time) error {
	return cs.rw.(deadliner).SetDeadline(t)
}

// countStream wraps rw with byte counting while preserving its deadline
// capability exactly.
func countStream(rw io.ReadWriteCloser) io.ReadWriteCloser {
	if _, ok := rw.(deadliner); ok {
		return deadlineCountingStream{countingStream{rw}}
	}
	return countingStream{rw}
}

// NewConn wraps a byte stream in the typed message layer.
func NewConn(rw io.ReadWriteCloser) *Conn {
	registerTypes()
	rw = countStream(rw)
	return &Conn{rw: rw, enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// SetMessageDeadline bounds each subsequent Send/Recv when the underlying
// stream supports deadlines (no-op otherwise).
func (c *Conn) SetMessageDeadline(d time.Duration) { c.deadline = d }

func (c *Conn) arm() {
	if c.deadline <= 0 {
		return
	}
	if d, ok := c.rw.(deadliner); ok {
		// Best effort: a failed deadline set surfaces as a read/write error.
		_ = d.SetDeadline(time.Now().Add(c.deadline))
	}
}

// Send transmits one message.
func (c *Conn) Send(v any) error {
	c.arm()
	if err := c.enc.Encode(&envelope{Payload: v}); err != nil {
		return wrapIO("send", err)
	}
	obs.Add(obs.CtrMsgsOut, 1)
	return nil
}

// SendErr reports a protocol failure to the peer.
func (c *Conn) SendErr(cause error) error {
	c.arm()
	return c.enc.Encode(&envelope{Err: cause.Error()})
}

// recvAny receives the next message of any payload type.
func (c *Conn) recvAny() (any, error) {
	c.arm()
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, wrapIO("recv", err)
	}
	obs.Add(obs.CtrMsgsIn, 1)
	if env.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, env.Err)
	}
	return env.Payload, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// RunContext runs one blocking exchange (fn issues Send/Recv calls on c)
// under ctx. On cancellation the connection's deadline is forced into the
// past — or, for streams without deadlines, the stream is closed — so the
// blocked operation fails promptly; the returned error then carries
// ErrCanceled and ctx.Err(). A canceled session must be abandoned: the
// connection is no longer in a usable protocol state.
func (c *Conn) RunContext(ctx context.Context, fn func() error) error {
	if ctx == nil || ctx.Done() == nil {
		return fn()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			if d, ok := c.rw.(deadliner); ok {
				_ = d.SetDeadline(time.Unix(1, 0))
			} else {
				_ = c.rw.Close()
			}
		case <-stop:
		}
	}()
	err := fn()
	close(stop)
	<-watcherDone
	if ctxErr := ctx.Err(); ctxErr != nil && err != nil {
		return fmt.Errorf("%w: %w (%v)", ErrCanceled, ctxErr, err)
	}
	return err
}

// Recv receives the next message and asserts its type.
func Recv[T any](c *Conn) (T, error) {
	var zero T
	payload, err := c.recvAny()
	if err != nil {
		return zero, err
	}
	v, ok := payload.(T)
	if !ok {
		return zero, fmt.Errorf("transport: unexpected message %T, want %T", payload, zero)
	}
	return v, nil
}
