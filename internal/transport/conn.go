// Package transport carries the protocol state machines over real
// connections: a typed message layer (gob-encoded envelopes over any
// io.ReadWriteCloser) plus a TCP server and client for the classification
// and similarity protocols. The same code paths drive in-memory net.Pipe
// connections in tests and TCP sockets in the cmd/ binaries, making the
// system an actual distributed deployment rather than a single-process
// simulation.
package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
)

// envelope wraps every message with an error channel (a party that fails
// mid-protocol reports the failure instead of going silent) and a stream
// ID correlating pipelined requests with their responses. Stream 0 is the
// unpipelined default.
type envelope struct {
	Err     string
	Stream  uint32
	Payload any
}

// envPool recycles send-side envelopes; the decode side reuses one
// per-conn envelope instead (the decoder is single-reader by contract).
var envPool = sync.Pool{New: func() any { return new(envelope) }}

// writeBufPool recycles per-conn write buffers: gob emits each message in
// several small writes, and buffering them costs one pooled 32 KiB slab
// instead of per-message syscalls and scratch allocations.
var writeBufPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) }}

var registerOnce sync.Once

func registerTypes() {
	registerOnce.Do(func() {
		gob.Register(&classify.Spec{})
		gob.Register(&ompe.EvalRequest{})
		gob.Register(&ot.BatchSetup{})
		gob.Register(&ot.BatchChoice{})
		gob.Register(&ot.BatchTransfer{})
		gob.Register(&similarity.Spec{})
		gob.Register(&similarity.ClearShare{})
		gob.Register(&similarity.KernelSpec{})
		gob.Register(&similarity.KernelClearShare{})
		gob.Register(&similarity.AreaScale{})
		gob.Register(&Hello{})
		gob.Register(&RoundHeader{})
		gob.Register(&Done{})
		gob.Register(&ot.IKNPBaseSetup{})
		gob.Register(&ot.IKNPBaseChoice{})
		gob.Register(&ot.IKNPBaseTransfer{})
		gob.Register(&ompe.FastRequest{})
		gob.Register(&ompe.FastResponse{})
		gob.Register(&ompe.FastBatchRequest{})
		gob.Register(&ompe.FastBatchResponse{})
		gob.Register(&ClassifyBatchRequest{})
		gob.Register(&ClassifyBatchSetups{})
		gob.Register(&ClassifyBatchChoices{})
		gob.Register(&ClassifyBatchTransfers{})
	})
}

// Slow-path (one-shot Naor–Pinkas) batch messages: B independent one-shot
// sessions ride each envelope, so a batch costs the same four round trips
// a single query does. The fast path batches deeper (ompe.FastBatchRequest
// shares one OT-extension round); these exist so both client surfaces
// offer ClassifyBatch.

// ClassifyBatchRequest packs B one-shot evaluation requests.
type ClassifyBatchRequest struct {
	Evals []*ompe.EvalRequest
}

// ClassifyBatchSetups answers with B OT setups, in request order.
type ClassifyBatchSetups struct {
	Setups []*ot.BatchSetup
}

// ClassifyBatchChoices carries B OT choices, in request order.
type ClassifyBatchChoices struct {
	Choices []*ot.BatchChoice
}

// ClassifyBatchTransfers completes B transfers, in request order.
type ClassifyBatchTransfers struct {
	Transfers []*ot.BatchTransfer
}

// Hello opens a session and selects the service.
type Hello struct {
	// Service is one of "classify", "classify-fast", "similarity-linear",
	// "similarity-kernel".
	Service string
	// FieldBackend is the field-arithmetic engine the client requests for
	// classification sessions ("limb", "big", or empty for math/big —
	// which is what legacy clients implicitly send, since gob omits the
	// absent field). The server grants "limb" only when its trainer
	// supports it; the granted backend comes back in the Spec.
	FieldBackend string
}

// RoundHeader precedes each OMPE round of the similarity protocol.
type RoundHeader struct {
	Round similarity.Round
}

// Done signals the clean end of a session.
type Done struct{}

// ErrRemote wraps an error reported by the peer.
var ErrRemote = errors.New("transport: remote error")

// ErrTimeout wraps any send/receive that failed because a message
// deadline passed: errors.Is(err, ErrTimeout) distinguishes "the network
// went quiet" from protocol failures.
var ErrTimeout = errors.New("transport: deadline exceeded")

// ErrCanceled wraps failures caused by context cancellation.
var ErrCanceled = errors.New("transport: canceled")

// wrapIO classifies a raw stream error: deadline expiries (from net.Conn
// deadlines or deadline-aware wrappers) gain the ErrTimeout mark so
// callers can branch on timeout-vs-protocol failure.
func wrapIO(op string, err error) error {
	var nerr interface{ Timeout() bool }
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &nerr) && nerr.Timeout()) {
		return fmt.Errorf("transport: %s: %w: %v", op, ErrTimeout, err)
	}
	return fmt.Errorf("transport: %s: %w", op, err)
}

// Conn is a typed, framed protocol connection. One goroutine may send
// while another receives (the server's pipelined sessions do exactly
// that), but sends must not race other sends, nor receives other
// receives.
type Conn struct {
	rw  io.ReadWriteCloser
	bw  *bufio.Writer
	enc *gob.Encoder
	dec *gob.Decoder

	// recvEnv is the reused decode target. gob leaves fields absent from
	// the wire untouched on decode, so every field is reset before reuse.
	recvEnv envelope

	// deadline, when non-zero, bounds each message exchange on net.Conn
	// transports.
	deadline time.Duration

	// sendMu serializes encoder access between an in-flight send and
	// Close's reclamation of the pooled write buffer. Protocol discipline
	// already keeps application sends sequential; the mutex exists so a
	// concurrent Close (e.g. RunContext cancellation, or a server tearing
	// down while its worker reports an error) cannot return the buffer to
	// the pool mid-flush.
	sendMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error
	closed    atomic.Bool
}

// deadliner matches net.Conn's deadline surface.
type deadliner interface {
	SetDeadline(time.Time) error
}

// countingStream counts wire bytes at the transport envelope. Counting
// happens per Read/Write call (one recorder call each), so the disabled
// path costs a single no-op interface call per syscall-sized chunk.
type countingStream struct {
	rw io.ReadWriteCloser
}

func (cs countingStream) Read(p []byte) (int, error) {
	n, err := cs.rw.Read(p)
	if n > 0 {
		obs.Add(obs.CtrBytesIn, int64(n))
	}
	return n, err
}

func (cs countingStream) Write(p []byte) (int, error) {
	n, err := cs.rw.Write(p)
	if n > 0 {
		obs.Add(obs.CtrBytesOut, int64(n))
	}
	return n, err
}

func (cs countingStream) Close() error { return cs.rw.Close() }

// deadlineCountingStream additionally forwards the deadline surface, so
// wrapping never hides a transport's deadline capability (RunContext
// falls back to Close-on-cancel only for genuinely deadline-less
// streams).
type deadlineCountingStream struct {
	countingStream
}

func (cs deadlineCountingStream) SetDeadline(t time.Time) error {
	return cs.rw.(deadliner).SetDeadline(t)
}

// countStream wraps rw with byte counting while preserving its deadline
// capability exactly.
func countStream(rw io.ReadWriteCloser) io.ReadWriteCloser {
	if _, ok := rw.(deadliner); ok {
		return deadlineCountingStream{countingStream{rw}}
	}
	return countingStream{rw}
}

// NewConn wraps a byte stream in the typed message layer. The gob
// encoder/decoder pair is built once here — type descriptions cross the
// wire once per connection, not once per message — and the write buffer
// comes from a pool shared by all connections.
func NewConn(rw io.ReadWriteCloser) *Conn {
	registerTypes()
	rw = countStream(rw)
	bw := writeBufPool.Get().(*bufio.Writer)
	bw.Reset(rw)
	return &Conn{rw: rw, bw: bw, enc: gob.NewEncoder(bw), dec: gob.NewDecoder(rw)}
}

// SetMessageDeadline bounds each subsequent Send/Recv when the underlying
// stream supports deadlines (no-op otherwise).
func (c *Conn) SetMessageDeadline(d time.Duration) { c.deadline = d }

func (c *Conn) arm() {
	if c.deadline <= 0 {
		return
	}
	if d, ok := c.rw.(deadliner); ok {
		// Best effort: a failed deadline set surfaces as a read/write error.
		_ = d.SetDeadline(time.Now().Add(c.deadline))
	}
}

// sendEnvelope encodes one envelope through the pooled write buffer and
// flushes it as a single message.
func (c *Conn) sendEnvelope(stream uint32, errStr string, v any) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed.Load() {
		return net.ErrClosed
	}
	c.arm()
	env := envPool.Get().(*envelope)
	env.Stream, env.Err, env.Payload = stream, errStr, v
	err := c.enc.Encode(env)
	env.Stream, env.Err, env.Payload = 0, "", nil
	envPool.Put(env)
	if err == nil {
		err = c.bw.Flush()
	}
	return err
}

// Send transmits one message on stream 0.
func (c *Conn) Send(v any) error { return c.SendStream(0, v) }

// SendStream transmits one message tagged with a stream ID, correlating
// pipelined requests with their responses.
func (c *Conn) SendStream(stream uint32, v any) error {
	if err := c.sendEnvelope(stream, "", v); err != nil {
		return wrapIO("send", err)
	}
	obs.Add(obs.CtrMsgsOut, 1)
	return nil
}

// SendErr reports a protocol failure to the peer.
func (c *Conn) SendErr(cause error) error {
	return c.sendEnvelope(0, cause.Error(), nil)
}

// recvStreamAny receives the next message of any payload type along with
// its stream ID.
func (c *Conn) recvStreamAny() (any, uint32, error) {
	c.arm()
	// Reset before decode: gob omits zero-valued fields on the wire and
	// leaves them untouched in the target, so stale values would leak
	// between messages otherwise.
	c.recvEnv.Err, c.recvEnv.Stream, c.recvEnv.Payload = "", 0, nil
	if err := c.dec.Decode(&c.recvEnv); err != nil {
		return nil, 0, wrapIO("recv", err)
	}
	obs.Add(obs.CtrMsgsIn, 1)
	if c.recvEnv.Err != "" {
		return nil, c.recvEnv.Stream, fmt.Errorf("%w: %s", ErrRemote, c.recvEnv.Err)
	}
	return c.recvEnv.Payload, c.recvEnv.Stream, nil
}

// recvAny receives the next message of any payload type.
func (c *Conn) recvAny() (any, error) {
	payload, _, err := c.recvStreamAny()
	return payload, err
}

// Close closes the underlying stream and returns the write buffer to the
// pool. Unflushed bytes are dropped — a session that matters has already
// flushed via Send.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		// Close the stream before taking sendMu: an in-flight send blocked
		// in Flush is unblocked by the close (its write errors out), so
		// Close never deadlocks behind a stalled peer.
		c.closeErr = c.rw.Close()
		c.sendMu.Lock()
		c.bw.Reset(io.Discard)
		writeBufPool.Put(c.bw)
		c.sendMu.Unlock()
	})
	return c.closeErr
}

// RunContext runs one blocking exchange (fn issues Send/Recv calls on c)
// under ctx. On cancellation the connection's deadline is forced into the
// past — or, for streams without deadlines, the stream is closed — so the
// blocked operation fails promptly; the returned error then carries
// ErrCanceled and ctx.Err(). A canceled session must be abandoned: the
// connection is no longer in a usable protocol state.
func (c *Conn) RunContext(ctx context.Context, fn func() error) error {
	if ctx == nil || ctx.Done() == nil {
		return fn()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			if d, ok := c.rw.(deadliner); ok {
				_ = d.SetDeadline(time.Unix(1, 0))
			} else {
				_ = c.rw.Close()
			}
		case <-stop:
		}
	}()
	err := fn()
	close(stop)
	<-watcherDone
	if ctxErr := ctx.Err(); ctxErr != nil && err != nil {
		return fmt.Errorf("%w: %w (%v)", ErrCanceled, ctxErr, err)
	}
	return err
}

// Recv receives the next message and asserts its type.
func Recv[T any](c *Conn) (T, error) {
	var zero T
	payload, err := c.recvAny()
	if err != nil {
		return zero, err
	}
	v, ok := payload.(T)
	if !ok {
		return zero, fmt.Errorf("transport: unexpected message %T, want %T", payload, zero)
	}
	return v, nil
}
