// Package transport carries the protocol state machines over real
// connections: a typed message layer (gob-encoded envelopes over any
// io.ReadWriteCloser) plus a TCP server and client for the classification
// and similarity protocols. The same code paths drive in-memory net.Pipe
// connections in tests and TCP sockets in the cmd/ binaries, making the
// system an actual distributed deployment rather than a single-process
// simulation.
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/svm"
	"repro/internal/wire"
)

// envelope wraps every message with an error channel (a party that fails
// mid-protocol reports the failure instead of going silent) and a stream
// ID correlating pipelined requests with their responses. Stream 0 is the
// unpipelined default.
type envelope struct {
	Err     string
	Stream  uint32
	Payload any
}

// envPool recycles send-side envelopes; the decode side reuses one
// per-conn envelope instead (the decoder is single-reader by contract).
var envPool = sync.Pool{New: func() any { return new(envelope) }}

// writeBufPool recycles per-conn write buffers: gob emits each message in
// several small writes, and buffering them costs one pooled 32 KiB slab
// instead of per-message syscalls and scratch allocations.
var writeBufPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) }}

var (
	registerOnce sync.Once
	warmErr      error
)

// wireTypes is the canonical envelope payload list. Order matters: gob
// assigns wire type IDs from a process-global counter in first-encode
// order, so registerTypes warm-encodes one zero value of each type in
// this exact order. That pins the IDs before any session runs — every
// process emits identical gob bytes for identical messages, instead of
// bytes that depend on which message type the process happened to
// encode first (the golden-transcript suite relies on this).
func wireTypes() []any {
	return []any{
		&classify.Spec{},
		&ompe.EvalRequest{},
		&ot.BatchSetup{},
		&ot.BatchChoice{},
		&ot.BatchTransfer{},
		&similarity.Spec{},
		&similarity.ClearShare{},
		&similarity.KernelSpec{Kernel: svm.Linear()},
		&similarity.KernelClearShare{AlphaSum: new(big.Int)},
		&similarity.AreaScale{},
		&Hello{},
		&RoundHeader{},
		&Done{},
		&ot.IKNPBaseSetup{},
		&ot.IKNPBaseChoice{},
		&ot.IKNPBaseTransfer{},
		&ompe.FastRequest{
			Eval: &ompe.EvalRequest{},
			OT:   &ot.ExtKofNRequest{IKNP: &ot.IKNPReceiverMsg{}},
		},
		&ompe.FastResponse{OT: &ot.ExtKofNResponse{IKNP: &ot.IKNPSenderMsg{}}},
		&ompe.FastBatchRequest{OT: &ot.ExtKofNBatchRequest{IKNP: &ot.IKNPReceiverMsg{}}},
		&ompe.FastBatchResponse{OT: &ot.ExtKofNBatchResponse{IKNP: &ot.IKNPSenderMsg{}}},
		&ClassifyBatchRequest{},
		&ClassifyBatchSetups{},
		&ClassifyBatchChoices{},
		&ClassifyBatchTransfers{},
		&SessionTicket{},
		&ResumeInfo{},
	}
}

func registerTypes() {
	registerOnce.Do(func() {
		types := wireTypes()
		for _, v := range types {
			gob.Register(v)
		}
		enc := gob.NewEncoder(io.Discard)
		for _, v := range types {
			if err := enc.Encode(&envelope{Payload: v}); err != nil && warmErr == nil {
				// Zero values of every wire type encode; a failure here
				// means a type changed incompatibly. Recorded so the
				// conformance suite can fail loudly on it.
				warmErr = fmt.Errorf("transport: gob warm-encode %T: %w", v, err)
			}
		}
	})
}

// Slow-path (one-shot Naor–Pinkas) batch messages: B independent one-shot
// sessions ride each envelope, so a batch costs the same four round trips
// a single query does. The fast path batches deeper (ompe.FastBatchRequest
// shares one OT-extension round); these exist so both client surfaces
// offer ClassifyBatch.

// ClassifyBatchRequest packs B one-shot evaluation requests.
type ClassifyBatchRequest struct {
	Evals []*ompe.EvalRequest
}

// ClassifyBatchSetups answers with B OT setups, in request order.
type ClassifyBatchSetups struct {
	Setups []*ot.BatchSetup
}

// ClassifyBatchChoices carries B OT choices, in request order.
type ClassifyBatchChoices struct {
	Choices []*ot.BatchChoice
}

// ClassifyBatchTransfers completes B transfers, in request order.
type ClassifyBatchTransfers struct {
	Transfers []*ot.BatchTransfer
}

// Hello opens a session and selects the service.
type Hello struct {
	// Service is one of "classify", "classify-fast", "similarity-linear",
	// "similarity-kernel".
	Service string
	// FieldBackend is the field-arithmetic engine the client requests for
	// classification sessions ("limb", "big", or empty for math/big —
	// which is what legacy clients implicitly send, since gob omits the
	// absent field). The server grants "limb" only when its trainer
	// supports it; the granted backend comes back in the Spec.
	FieldBackend string
	// WireCodecs lists the envelope codecs the client can speak, in
	// preference order (CodecBinary, CodecGob). Legacy clients send
	// nothing — gob omits the absent field — which reads as gob-only.
	// The granted codec comes back in the spec's WireCodec field, and
	// both sides switch after the spec exchange.
	WireCodecs []string
	// PadFuncs lists the OT-extension pad families the client can run,
	// in preference order ("aes", "sha256"). Legacy clients send nothing,
	// which reads as SHA-256-only; the granted pad comes back in the
	// spec's PadFunc field.
	PadFuncs []string
	// ResumeOffered asks the server to mint a resumption ticket at the
	// clean end of this session. Legacy clients send nothing (gob omits
	// the absent field), which reads as no offer; legacy servers drop the
	// unknown field and mint nothing.
	ResumeOffered bool
	// ResumeTicket carries a sealed resumption ticket from a previous
	// session. The server validates it and, on success, grants resumption
	// in the spec (Spec.ResumeGranted) and both sides skip the base OT
	// phase; on any failure it silently declines and the session runs a
	// full handshake.
	ResumeTicket []byte
}

// RoundHeader precedes each OMPE round of the similarity protocol.
type RoundHeader struct {
	Round similarity.Round
}

// Done signals the clean end of a session.
type Done struct{}

// ErrRemote wraps an error reported by the peer.
var ErrRemote = errors.New("transport: remote error")

// ErrTimeout wraps any send/receive that failed because a message
// deadline passed: errors.Is(err, ErrTimeout) distinguishes "the network
// went quiet" from protocol failures.
var ErrTimeout = errors.New("transport: deadline exceeded")

// ErrCanceled wraps failures caused by context cancellation.
var ErrCanceled = errors.New("transport: canceled")

// wrapIO classifies a raw stream error: deadline expiries (from net.Conn
// deadlines or deadline-aware wrappers) gain the ErrTimeout mark so
// callers can branch on timeout-vs-protocol failure.
func wrapIO(op string, err error) error {
	var nerr interface{ Timeout() bool }
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &nerr) && nerr.Timeout()) {
		return fmt.Errorf("transport: %s: %w: %v", op, ErrTimeout, err)
	}
	return fmt.Errorf("transport: %s: %w", op, err)
}

// Conn is a typed, framed protocol connection. One goroutine may send
// while another receives (the server's pipelined sessions do exactly
// that), but sends must not race other sends, nor receives other
// receives.
type Conn struct {
	rw io.ReadWriteCloser
	bw *bufio.Writer
	// br is the connection-owned read buffer. It is shared between the
	// gob decoder and the binary frame reader: gob.NewDecoder wraps any
	// non-ByteReader source in its own bufio and would read past message
	// boundaries, stealing bytes from whatever codec runs next. A
	// *bufio.Reader is a ByteReader, so gob reads exactly one message at
	// a time and a mid-session codec switch loses nothing.
	br  *bufio.Reader
	enc *gob.Encoder
	dec *gob.Decoder

	// codec selects the active envelope encoding. It changes only at the
	// negotiated switch point (after the spec exchange), which happens
	// before any concurrent senders or receivers are spawned.
	codec codecID

	// encBuf and recvBuf are the reused binary-codec scratch buffers
	// (payload encode target and frame payload, respectively). encBuf is
	// guarded by sendMu; recvBuf by the single-receiver contract.
	encBuf  []byte
	recvBuf []byte

	// recvEnv is the reused decode target. gob leaves fields absent from
	// the wire untouched on decode, so every field is reset before reuse.
	recvEnv envelope

	// deadline, when non-zero, bounds each message exchange on net.Conn
	// transports.
	deadline time.Duration

	// sendMu serializes encoder access between an in-flight send and
	// Close's reclamation of the pooled write buffer. Protocol discipline
	// already keeps application sends sequential; the mutex exists so a
	// concurrent Close (e.g. RunContext cancellation, or a server tearing
	// down while its worker reports an error) cannot return the buffer to
	// the pool mid-flush.
	sendMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error
	closed    atomic.Bool
}

// deadliner matches net.Conn's deadline surface.
type deadliner interface {
	SetDeadline(time.Time) error
}

// Endpoint roles for the per-role byte counters. When client and server
// share a process (benches, in-process fleets), the role-less totals
// count every byte twice and in == out tautologically; role-tagged
// connections additionally feed the directional counters that stay
// meaningful in that setup.
const (
	roleClient = "client"
	roleServer = "server"
)

// countingStream counts wire bytes at the transport envelope. Counting
// happens per Read/Write call (one recorder call each), so the disabled
// path costs a single no-op interface call per syscall-sized chunk.
type countingStream struct {
	rw io.ReadWriteCloser
	// inCtr/outCtr are the role-split counter names ("" for untagged
	// connections, which feed only the process totals).
	inCtr, outCtr string
}

func (cs countingStream) Read(p []byte) (int, error) {
	n, err := cs.rw.Read(p)
	if n > 0 {
		obs.Add(obs.CtrBytesIn, int64(n))
		if cs.inCtr != "" {
			obs.Add(cs.inCtr, int64(n))
		}
	}
	return n, err
}

func (cs countingStream) Write(p []byte) (int, error) {
	n, err := cs.rw.Write(p)
	if n > 0 {
		obs.Add(obs.CtrBytesOut, int64(n))
		if cs.outCtr != "" {
			obs.Add(cs.outCtr, int64(n))
		}
	}
	return n, err
}

func (cs countingStream) Close() error { return cs.rw.Close() }

// deadlineCountingStream additionally forwards the deadline surface, so
// wrapping never hides a transport's deadline capability (RunContext
// falls back to Close-on-cancel only for genuinely deadline-less
// streams).
type deadlineCountingStream struct {
	countingStream
}

func (cs deadlineCountingStream) SetDeadline(t time.Time) error {
	return cs.rw.(deadliner).SetDeadline(t)
}

// countStream wraps rw with byte counting while preserving its deadline
// capability exactly.
func countStream(rw io.ReadWriteCloser, role string) io.ReadWriteCloser {
	cs := countingStream{rw: rw}
	switch role {
	case roleClient:
		cs.inCtr, cs.outCtr = obs.CtrClientBytesIn, obs.CtrClientBytesOut
	case roleServer:
		cs.inCtr, cs.outCtr = obs.CtrServerBytesIn, obs.CtrServerBytesOut
	}
	if _, ok := rw.(deadliner); ok {
		return deadlineCountingStream{cs}
	}
	return cs
}

// NewConn wraps a byte stream in the typed message layer. The gob
// encoder/decoder pair is built once here — type descriptions cross the
// wire once per connection, not once per message — and the write buffer
// comes from a pool shared by all connections.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return newConnRole(rw, "")
}

// newConnRole is NewConn with a role tag for the per-role byte counters
// (the protocol clients pass roleClient, the server roleServer; untagged
// connections feed only the process totals).
func newConnRole(rw io.ReadWriteCloser, role string) *Conn {
	registerTypes()
	rw = countStream(rw, role)
	bw := writeBufPool.Get().(*bufio.Writer)
	bw.Reset(rw)
	br := bufio.NewReaderSize(rw, 32<<10)
	return &Conn{rw: rw, bw: bw, br: br, enc: gob.NewEncoder(bw), dec: gob.NewDecoder(br)}
}

// UseCodec switches the connection's envelope codec. Both peers must
// switch at the same protocol point (after the spec exchange); callers
// must not have sends or receives in flight.
func (c *Conn) UseCodec(name string) error {
	id, err := codecByName(name)
	if err != nil {
		return err
	}
	c.codec = id
	return nil
}

// Codec reports the active envelope codec name.
func (c *Conn) Codec() string {
	if c.codec == codecBinaryID {
		return CodecBinary
	}
	return CodecGob
}

// SetMessageDeadline bounds each subsequent Send/Recv when the underlying
// stream supports deadlines (no-op otherwise).
func (c *Conn) SetMessageDeadline(d time.Duration) { c.deadline = d }

func (c *Conn) arm() {
	if c.deadline <= 0 {
		return
	}
	if d, ok := c.rw.(deadliner); ok {
		// Best effort: a failed deadline set surfaces as a read/write error.
		_ = d.SetDeadline(time.Now().Add(c.deadline))
	}
}

// sendEnvelope encodes one envelope through the pooled write buffer and
// flushes it as a single message.
func (c *Conn) sendEnvelope(stream uint32, errStr string, v any) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed.Load() {
		return net.ErrClosed
	}
	c.arm()
	if c.codec == codecBinaryID {
		return c.sendBinaryLocked(stream, errStr, v)
	}
	env := envPool.Get().(*envelope)
	env.Stream, env.Err, env.Payload = stream, errStr, v
	err := c.enc.Encode(env)
	env.Stream, env.Err, env.Payload = 0, "", nil
	envPool.Put(env)
	if err == nil {
		err = c.bw.Flush()
	}
	return err
}

// sendBinaryLocked writes one binary frame: the payload is encoded into
// the reused scratch buffer via the type-switch registry (no
// reflection), then header and payload go out through the pooled write
// buffer as a single flush. Callers hold sendMu.
func (c *Conn) sendBinaryLocked(stream uint32, errStr string, v any) error {
	var tag byte
	payload := c.encBuf[:0]
	if errStr != "" || v == nil {
		tag = tagErr
		payload = append(payload, errStr...)
	} else {
		t, m, ok := binMsg(v)
		if !ok {
			return fmt.Errorf("transport: no binary frame tag for %T", v)
		}
		tag = t
		ww := wire.NewAppendWriter(payload)
		m.EncodeWire(ww)
		if err := ww.Err(); err != nil {
			return fmt.Errorf("transport: encode %T: %w", v, err)
		}
		payload = ww.Bytes()
	}
	c.encBuf = payload[:0]
	if len(payload) > maxFramePayload {
		return fmt.Errorf("transport: frame payload %d exceeds %d: %w", len(payload), maxFramePayload, wire.ErrOversize)
	}
	var hdr [frameHeaderSize]byte
	hdr[0] = wireVersion
	hdr[1] = tag
	binary.BigEndian.PutUint32(hdr[2:6], stream)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recvBinary reads one binary frame from the shared read buffer. The
// header is validated (version, payload bound) before any payload byte
// is read, so version skew and oversized frames fail fast.
func (c *Conn) recvBinary() (any, uint32, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, 0, err
	}
	if hdr[0] != wireVersion {
		return nil, 0, fmt.Errorf("%w: got 0x%02x, want 0x%02x", ErrWireVersion, hdr[0], wireVersion)
	}
	tag := hdr[1]
	stream := binary.BigEndian.Uint32(hdr[2:6])
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > maxFramePayload {
		return nil, 0, fmt.Errorf("transport: frame payload %d exceeds %d: %w", n, maxFramePayload, wire.ErrOversize)
	}
	if cap(c.recvBuf) < int(n) {
		c.recvBuf = make([]byte, n)
	}
	buf := c.recvBuf[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, 0, err
	}
	if tag == tagErr {
		return nil, stream, fmt.Errorf("%w: %s", ErrRemote, string(buf))
	}
	msg, ok := newBinPayload(tag)
	if !ok {
		return nil, 0, fmt.Errorf("transport: unknown frame tag 0x%02x", tag)
	}
	if err := wire.Unmarshal(buf, msg); err != nil {
		return nil, 0, fmt.Errorf("transport: decode frame tag 0x%02x: %w", tag, err)
	}
	return msg, stream, nil
}

// Send transmits one message on stream 0.
func (c *Conn) Send(v any) error { return c.SendStream(0, v) }

// SendStream transmits one message tagged with a stream ID, correlating
// pipelined requests with their responses.
func (c *Conn) SendStream(stream uint32, v any) error {
	if err := c.sendEnvelope(stream, "", v); err != nil {
		return wrapIO("send", err)
	}
	obs.Add(obs.CtrMsgsOut, 1)
	return nil
}

// SendErr reports a protocol failure to the peer.
func (c *Conn) SendErr(cause error) error {
	return c.sendEnvelope(0, cause.Error(), nil)
}

// recvStreamAny receives the next message of any payload type along with
// its stream ID.
func (c *Conn) recvStreamAny() (any, uint32, error) {
	c.arm()
	if c.codec == codecBinaryID {
		payload, stream, err := c.recvBinary()
		if err != nil {
			if errors.Is(err, ErrRemote) {
				return nil, stream, err
			}
			return nil, 0, wrapIO("recv", err)
		}
		obs.Add(obs.CtrMsgsIn, 1)
		return payload, stream, nil
	}
	// Reset before decode: gob omits zero-valued fields on the wire and
	// leaves them untouched in the target, so stale values would leak
	// between messages otherwise.
	c.recvEnv.Err, c.recvEnv.Stream, c.recvEnv.Payload = "", 0, nil
	if err := c.dec.Decode(&c.recvEnv); err != nil {
		return nil, 0, wrapIO("recv", err)
	}
	obs.Add(obs.CtrMsgsIn, 1)
	if c.recvEnv.Err != "" {
		return nil, c.recvEnv.Stream, fmt.Errorf("%w: %s", ErrRemote, c.recvEnv.Err)
	}
	return c.recvEnv.Payload, c.recvEnv.Stream, nil
}

// recvAny receives the next message of any payload type.
func (c *Conn) recvAny() (any, error) {
	payload, _, err := c.recvStreamAny()
	return payload, err
}

// Close closes the underlying stream and returns the write buffer to the
// pool. Unflushed bytes are dropped — a session that matters has already
// flushed via Send.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		// Close the stream before taking sendMu: an in-flight send blocked
		// in Flush is unblocked by the close (its write errors out), so
		// Close never deadlocks behind a stalled peer.
		c.closeErr = c.rw.Close()
		c.sendMu.Lock()
		c.bw.Reset(io.Discard)
		writeBufPool.Put(c.bw)
		c.sendMu.Unlock()
	})
	return c.closeErr
}

// RunContext runs one blocking exchange (fn issues Send/Recv calls on c)
// under ctx. On cancellation the connection's deadline is forced into the
// past — or, for streams without deadlines, the stream is closed — so the
// blocked operation fails promptly; the returned error then carries
// ErrCanceled and ctx.Err(). A canceled session must be abandoned: the
// connection is no longer in a usable protocol state.
func (c *Conn) RunContext(ctx context.Context, fn func() error) error {
	if ctx == nil || ctx.Done() == nil {
		return fn()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			if d, ok := c.rw.(deadliner); ok {
				_ = d.SetDeadline(time.Unix(1, 0))
			} else {
				_ = c.rw.Close()
			}
		case <-stop:
		}
	}()
	err := fn()
	close(stop)
	<-watcherDone
	if ctxErr := ctx.Err(); ctxErr != nil && err != nil {
		return fmt.Errorf("%w: %w (%v)", ErrCanceled, ctxErr, err)
	}
	return err
}

// PeekHello decodes the session-opening Hello directly from a raw byte
// stream. It exists for the gateway's ticket-affinity routing: the
// gateway records every byte its decoder consumes from the client and
// replays them verbatim to whichever replica it picks, so the replica
// still sees the pristine client stream. The Hello always crosses in gob
// (codec negotiation happens after it), and no client bytes follow it
// until the server's spec reply, so the decoder's read-ahead can only
// ever buffer Hello bytes — all of which the caller's recorder captured.
func PeekHello(r io.Reader) (*Hello, error) {
	registerTypes()
	dec := gob.NewDecoder(r)
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return nil, wrapIO("peek hello", err)
	}
	if env.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, env.Err)
	}
	hello, ok := env.Payload.(*Hello)
	if !ok {
		return nil, fmt.Errorf("transport: unexpected message %T, want *Hello", env.Payload)
	}
	return hello, nil
}

// Recv receives the next message and asserts its type.
func Recv[T any](c *Conn) (T, error) {
	var zero T
	payload, err := c.recvAny()
	if err != nil {
		return zero, err
	}
	v, ok := payload.(T)
	if !ok {
		return zero, fmt.Errorf("transport: unexpected message %T, want %T", payload, zero)
	}
	return v, nil
}
