package transport

// Binary wire encodings for the transport-layer message types, plus the
// frame tag registry mapping payload types to their wire tags. Tags are
// part of the wire contract: existing values must never be renumbered,
// new types append.

import (
	"io"

	"repro/internal/classify"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/wire"
)

// Frame tags. Tag 0 is reserved for the error frame (payload is the
// remote error string, not a message).
const (
	tagErr                    byte = 0
	tagHello                  byte = 1
	tagClassifySpec           byte = 2
	tagEvalRequest            byte = 3
	tagBatchSetup             byte = 4
	tagBatchChoice            byte = 5
	tagBatchTransfer          byte = 6
	tagSimilaritySpec         byte = 7
	tagClearShare             byte = 8
	tagKernelSpec             byte = 9
	tagKernelClearShare       byte = 10
	tagAreaScale              byte = 11
	tagRoundHeader            byte = 12
	tagDone                   byte = 13
	tagIKNPBaseSetup          byte = 14
	tagIKNPBaseChoice         byte = 15
	tagIKNPBaseTransfer       byte = 16
	tagFastRequest            byte = 17
	tagFastResponse           byte = 18
	tagFastBatchRequest       byte = 19
	tagFastBatchResponse      byte = 20
	tagClassifyBatchRequest   byte = 21
	tagClassifyBatchSetups    byte = 22
	tagClassifyBatchChoices   byte = 23
	tagClassifyBatchTransfers byte = 24
	tagSessionTicket          byte = 25
	tagResumeInfo             byte = 26
)

// binMsg resolves a payload to its frame tag and wire encoder. The type
// switch is the entire dispatch — no reflection on the send path.
func binMsg(v any) (byte, wire.Msg, bool) {
	switch m := v.(type) {
	case *Hello:
		return tagHello, m, true
	case *classify.Spec:
		return tagClassifySpec, m, true
	case *ompe.EvalRequest:
		return tagEvalRequest, m, true
	case *ot.BatchSetup:
		return tagBatchSetup, m, true
	case *ot.BatchChoice:
		return tagBatchChoice, m, true
	case *ot.BatchTransfer:
		return tagBatchTransfer, m, true
	case *similarity.Spec:
		return tagSimilaritySpec, m, true
	case *similarity.ClearShare:
		return tagClearShare, m, true
	case *similarity.KernelSpec:
		return tagKernelSpec, m, true
	case *similarity.KernelClearShare:
		return tagKernelClearShare, m, true
	case *similarity.AreaScale:
		return tagAreaScale, m, true
	case *RoundHeader:
		return tagRoundHeader, m, true
	case *Done:
		return tagDone, m, true
	case *ot.IKNPBaseSetup:
		return tagIKNPBaseSetup, m, true
	case *ot.IKNPBaseChoice:
		return tagIKNPBaseChoice, m, true
	case *ot.IKNPBaseTransfer:
		return tagIKNPBaseTransfer, m, true
	case *ompe.FastRequest:
		return tagFastRequest, m, true
	case *ompe.FastResponse:
		return tagFastResponse, m, true
	case *ompe.FastBatchRequest:
		return tagFastBatchRequest, m, true
	case *ompe.FastBatchResponse:
		return tagFastBatchResponse, m, true
	case *ClassifyBatchRequest:
		return tagClassifyBatchRequest, m, true
	case *ClassifyBatchSetups:
		return tagClassifyBatchSetups, m, true
	case *ClassifyBatchChoices:
		return tagClassifyBatchChoices, m, true
	case *ClassifyBatchTransfers:
		return tagClassifyBatchTransfers, m, true
	case *SessionTicket:
		return tagSessionTicket, m, true
	case *ResumeInfo:
		return tagResumeInfo, m, true
	default:
		return 0, nil, false
	}
}

// newBinPayload allocates the concrete payload type for a frame tag. The
// returned value is both the decode target (wire.Msg) and the payload
// handed to Recv's type assertions (any), so the concrete types here
// must match what the gob path produces.
func newBinPayload(tag byte) (wire.Msg, bool) {
	switch tag {
	case tagHello:
		return new(Hello), true
	case tagClassifySpec:
		return new(classify.Spec), true
	case tagEvalRequest:
		return new(ompe.EvalRequest), true
	case tagBatchSetup:
		return new(ot.BatchSetup), true
	case tagBatchChoice:
		return new(ot.BatchChoice), true
	case tagBatchTransfer:
		return new(ot.BatchTransfer), true
	case tagSimilaritySpec:
		return new(similarity.Spec), true
	case tagClearShare:
		return new(similarity.ClearShare), true
	case tagKernelSpec:
		return new(similarity.KernelSpec), true
	case tagKernelClearShare:
		return new(similarity.KernelClearShare), true
	case tagAreaScale:
		return new(similarity.AreaScale), true
	case tagRoundHeader:
		return new(RoundHeader), true
	case tagDone:
		return new(Done), true
	case tagIKNPBaseSetup:
		return new(ot.IKNPBaseSetup), true
	case tagIKNPBaseChoice:
		return new(ot.IKNPBaseChoice), true
	case tagIKNPBaseTransfer:
		return new(ot.IKNPBaseTransfer), true
	case tagFastRequest:
		return new(ompe.FastRequest), true
	case tagFastResponse:
		return new(ompe.FastResponse), true
	case tagFastBatchRequest:
		return new(ompe.FastBatchRequest), true
	case tagFastBatchResponse:
		return new(ompe.FastBatchResponse), true
	case tagClassifyBatchRequest:
		return new(ClassifyBatchRequest), true
	case tagClassifyBatchSetups:
		return new(ClassifyBatchSetups), true
	case tagClassifyBatchChoices:
		return new(ClassifyBatchChoices), true
	case tagClassifyBatchTransfers:
		return new(ClassifyBatchTransfers), true
	case tagSessionTicket:
		return new(SessionTicket), true
	case tagResumeInfo:
		return new(ResumeInfo), true
	default:
		return nil, false
	}
}

// EncodeWire implements the wire codec.
func (h *Hello) EncodeWire(w *wire.Writer) {
	w.String(h.Service)
	w.String(h.FieldBackend)
	w.Count(len(h.WireCodecs))
	for _, c := range h.WireCodecs {
		w.String(c)
	}
	// Optional tails (see wire.Reader.More), append-only: the pad tail is
	// omitted when no pads are offered, so a pad-less Hello is
	// byte-identical to a pre-negotiation build's and old recordings
	// decode unchanged. The resume tail rides behind it; offering resume
	// forces the pad tail present (possibly empty) so the two stay
	// positionally unambiguous.
	resume := h.ResumeOffered || len(h.ResumeTicket) > 0
	if len(h.PadFuncs) > 0 || resume {
		w.Count(len(h.PadFuncs))
		for _, p := range h.PadFuncs {
			w.String(p)
		}
	}
	if resume {
		w.Bool(h.ResumeOffered)
		w.ByteSlice(h.ResumeTicket)
	}
}

// DecodeWire implements the wire codec.
func (h *Hello) DecodeWire(r *wire.Reader) {
	h.Service = r.String()
	h.FieldBackend = r.String()
	n := r.Count()
	if r.Err() != nil {
		return
	}
	h.WireCodecs = nil
	for i := 0; i < n; i++ {
		h.WireCodecs = append(h.WireCodecs, r.String())
		if r.Err() != nil {
			return
		}
	}
	h.PadFuncs = nil
	h.ResumeOffered = false
	h.ResumeTicket = nil
	if !r.More() {
		return
	}
	np := r.Count()
	if r.Err() != nil {
		return
	}
	for i := 0; i < np; i++ {
		h.PadFuncs = append(h.PadFuncs, r.String())
		if r.Err() != nil {
			return
		}
	}
	if !r.More() {
		return
	}
	h.ResumeOffered = r.Bool()
	h.ResumeTicket = r.ByteSlice()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *Hello) MarshalBinary() ([]byte, error) { return wire.Marshal(h) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *Hello) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, h) }

// WriteTo implements io.WriterTo.
func (h *Hello) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, h) }

// ReadFrom implements io.ReaderFrom.
func (h *Hello) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, h) }

// EncodeWire implements the wire codec.
func (h *RoundHeader) EncodeWire(w *wire.Writer) { w.Int(int(h.Round)) }

// DecodeWire implements the wire codec.
func (h *RoundHeader) DecodeWire(r *wire.Reader) { h.Round = similarity.Round(r.Int()) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *RoundHeader) MarshalBinary() ([]byte, error) { return wire.Marshal(h) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *RoundHeader) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, h) }

// WriteTo implements io.WriterTo.
func (h *RoundHeader) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, h) }

// ReadFrom implements io.ReaderFrom.
func (h *RoundHeader) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, h) }

// EncodeWire implements the wire codec. Done carries no payload.
func (d *Done) EncodeWire(w *wire.Writer) {}

// DecodeWire implements the wire codec.
func (d *Done) DecodeWire(r *wire.Reader) {}

// MarshalBinary implements encoding.BinaryMarshaler.
func (d *Done) MarshalBinary() ([]byte, error) { return wire.Marshal(d) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (d *Done) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, d) }

// WriteTo implements io.WriterTo.
func (d *Done) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, d) }

// ReadFrom implements io.ReaderFrom.
func (d *Done) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, d) }

// encodePtrSeq writes a count-prefixed sequence of required pointers.
func encodePtrSeq[T any, P interface {
	*T
	wire.Msg
}](w *wire.Writer, seq []P) {
	w.Count(len(seq))
	for _, m := range seq {
		if m == nil {
			w.BigInt(nil) // typed ErrNilValue via the sticky writer
			return
		}
		m.EncodeWire(w)
	}
}

// decodePtrSeq reads a count-prefixed sequence of required pointers.
func decodePtrSeq[T any, P interface {
	*T
	wire.Msg
}](r *wire.Reader) []P {
	n := r.Count()
	if r.Err() != nil {
		return nil
	}
	seq := make([]P, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		m := P(new(T))
		m.DecodeWire(r)
		if r.Err() != nil {
			return nil
		}
		seq = append(seq, m)
	}
	return seq
}

// EncodeWire implements the wire codec.
func (b *ClassifyBatchRequest) EncodeWire(w *wire.Writer) { encodePtrSeq(w, b.Evals) }

// DecodeWire implements the wire codec.
func (b *ClassifyBatchRequest) DecodeWire(r *wire.Reader) {
	b.Evals = decodePtrSeq[ompe.EvalRequest, *ompe.EvalRequest](r)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *ClassifyBatchRequest) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *ClassifyBatchRequest) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *ClassifyBatchRequest) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *ClassifyBatchRequest) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *ClassifyBatchSetups) EncodeWire(w *wire.Writer) { encodePtrSeq(w, b.Setups) }

// DecodeWire implements the wire codec.
func (b *ClassifyBatchSetups) DecodeWire(r *wire.Reader) {
	b.Setups = decodePtrSeq[ot.BatchSetup, *ot.BatchSetup](r)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *ClassifyBatchSetups) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *ClassifyBatchSetups) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *ClassifyBatchSetups) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *ClassifyBatchSetups) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *ClassifyBatchChoices) EncodeWire(w *wire.Writer) { encodePtrSeq(w, b.Choices) }

// DecodeWire implements the wire codec.
func (b *ClassifyBatchChoices) DecodeWire(r *wire.Reader) {
	b.Choices = decodePtrSeq[ot.BatchChoice, *ot.BatchChoice](r)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *ClassifyBatchChoices) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *ClassifyBatchChoices) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *ClassifyBatchChoices) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *ClassifyBatchChoices) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *ClassifyBatchTransfers) EncodeWire(w *wire.Writer) { encodePtrSeq(w, b.Transfers) }

// DecodeWire implements the wire codec.
func (b *ClassifyBatchTransfers) DecodeWire(r *wire.Reader) {
	b.Transfers = decodePtrSeq[ot.BatchTransfer, *ot.BatchTransfer](r)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *ClassifyBatchTransfers) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *ClassifyBatchTransfers) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *ClassifyBatchTransfers) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *ClassifyBatchTransfers) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }
