package transport

import (
	"context"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/ot"
)

// Defaults for Options fields left zero.
const (
	// DefaultMessageDeadline bounds each message exchange.
	DefaultMessageDeadline = 2 * time.Minute
	// DefaultDialTimeout bounds each individual dial attempt.
	DefaultDialTimeout = 10 * time.Second
	// DefaultMaxAttempts is the total number of dial attempts.
	DefaultMaxAttempts = 3
	// DefaultBackoffBase is the delay before the first retry; subsequent
	// delays double up to DefaultBackoffMax.
	DefaultBackoffBase = 100 * time.Millisecond
	// DefaultBackoffMax caps the retry delay.
	DefaultBackoffMax = 5 * time.Second
)

// NoDeadline disables the per-message deadline when assigned to
// Options.MessageDeadline (a zero value selects the default instead).
const NoDeadline = time.Duration(-1)

// Options configures dialing and session behavior for the protocol
// clients. The zero value selects the defaults above.
type Options struct {
	// DialTimeout bounds each individual dial attempt.
	DialTimeout time.Duration

	// MessageDeadline bounds every message exchange of the session on
	// deadline-capable transports. Zero selects DefaultMessageDeadline;
	// NoDeadline (any negative value) disables it.
	MessageDeadline time.Duration

	// MaxAttempts is the total number of dial attempts (1 = no retry).
	// Zero selects DefaultMaxAttempts.
	MaxAttempts int

	// BackoffBase is the delay before the first retry. Each subsequent
	// delay doubles, capped at BackoffMax, and is jittered uniformly down
	// to half its nominal value so synchronized clients spread out.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// JitterSeed, when non-zero, makes the backoff jitter deterministic
	// (for tests). Zero draws from a process-wide seeded source.
	JitterSeed int64

	// FieldBackend is the field-arithmetic engine the classification
	// client requests in its Hello ("limb", "big", or empty for the
	// default request, "limb"). The request is an upper bound, not a
	// demand: the server grants the limb engine only when its trainer was
	// built with it, and the session otherwise runs math/big — so the
	// default always interoperates. Set "big" to pin the math/big path
	// (e.g. for backend-comparison benchmarks).
	FieldBackend string

	// WireCodec pins the envelope codec the client offers in its Hello.
	// Empty offers both (binary preferred, gob fallback) and lets the
	// server pick; CodecGob pins the legacy gob envelopes (e.g. when
	// talking to a peer whose binary framing is suspect); CodecBinary
	// offers only binary — a gob-only server will still answer in gob,
	// and the client rejects the session rather than mis-frame.
	WireCodec string

	// PadFunc selects the OT-extension pad family the client offers in
	// its Hello. Empty offers nothing (the session runs the legacy
	// SHA-256 pad, and the Hello is byte-identical to a pre-negotiation
	// build's); "aes" offers the fixed-key AES pad with SHA-256 as the
	// implicit fallback — a legacy server grants nothing and the session
	// runs SHA-256 unchanged. Unlike the field backend, the pad is never
	// requested by default: it changes the symmetric derivations on both
	// endpoints, so it is strictly opt-in.
	PadFunc string

	// OfferResume asks the server to mint a session-resumption ticket at
	// the clean end of a fast session (FastClassifyClient.ResumeState
	// harvests it at Close). Strictly opt-in: an offer-less Hello is
	// byte-identical to a pre-resumption build's, and legacy servers drop
	// the unknown field. Setting Resume implies the offer.
	OfferResume bool

	// Resume presents a previously harvested ResumeState on the next fast
	// handshake: the ticket rides the Hello, and a granting server skips
	// the base OT phase. A declined or stale ticket silently falls back
	// to a full handshake; only protocol violations (a grant that was
	// never offered, or a granted contract diverging from the ticket's)
	// surface as ErrResume.
	Resume *ResumeState
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.MessageDeadline == 0 {
		o.MessageDeadline = DefaultMessageDeadline
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	return o
}

// requestedBackend resolves the backend request for the Hello: the
// default request is "limb" (a no-op against servers that cannot grant
// it), and any explicit setting is passed through as-is.
func (o Options) requestedBackend() string {
	if o.FieldBackend == "" {
		return string(field.BackendLimb)
	}
	return o.FieldBackend
}

// offeredCodecs resolves the codec offer for the Hello: the default
// offers binary with gob fallback; an explicit setting narrows the offer
// to that codec alone.
func (o Options) offeredCodecs() []string {
	if o.WireCodec == "" {
		return defaultWireCodecs()
	}
	return []string{o.WireCodec}
}

// offeredPads resolves the pad offer for the Hello: empty by default —
// the legacy SHA-256 pad needs no negotiation, and offering nothing
// keeps the Hello bit-identical to older builds' — and a single-element
// offer when a pad is pinned explicitly.
func (o Options) offeredPads() []string {
	if o.PadFunc == "" || o.PadFunc == string(ot.PadSHA256) {
		return nil
	}
	return []string{o.PadFunc}
}

// messageDeadline resolves the effective per-message deadline (0 = none).
func (o Options) messageDeadline() time.Duration {
	o = o.withDefaults()
	if o.MessageDeadline < 0 {
		return 0
	}
	return o.MessageDeadline
}

// jitterRand is the process-wide jitter source for callers that don't pin
// a seed. math/rand (not crypto) is deliberate: backoff jitter needs
// spread, not unpredictability.
var (
	jitterMu   sync.Mutex
	jitterRand = mrand.New(mrand.NewSource(1))
)

// backoffDelay returns the jittered delay before retry number `retry`
// (1-based): base·2^(retry-1) capped at max, then scaled uniformly into
// [1/2, 1] of its nominal value.
func backoffDelay(retry int, o Options, rng *mrand.Rand) time.Duration {
	d := o.BackoffBase
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= o.BackoffMax {
			d = o.BackoffMax
			break
		}
	}
	if d > o.BackoffMax {
		d = o.BackoffMax
	}
	var frac float64
	if rng != nil {
		frac = rng.Float64()
	} else {
		jitterMu.Lock()
		frac = jitterRand.Float64()
		jitterMu.Unlock()
	}
	return d/2 + time.Duration(frac*float64(d/2))
}

// DialContext dials addr with the per-attempt timeout, retry, and
// exponential-backoff policy in opts, honoring ctx throughout. It is the
// raw-stream entry point the fleet layer (gateway replica dialing,
// health probing) shares with the protocol clients.
func DialContext(ctx context.Context, addr string, opts Options) (net.Conn, error) {
	return dialRetry(ctx, addr, opts)
}

// dialRetry dials addr with per-attempt timeouts and exponential backoff
// between attempts, honoring ctx throughout.
func dialRetry(ctx context.Context, addr string, o Options) (net.Conn, error) {
	o = o.withDefaults()
	var rng *mrand.Rand
	if o.JitterSeed != 0 {
		rng = mrand.New(mrand.NewSource(o.JitterSeed))
	}
	var dialer net.Dialer
	var lastErr error
	for attempt := 1; attempt <= o.MaxAttempts; attempt++ {
		if attempt > 1 {
			obs.Add(obs.CtrDialRetries, 1)
			delay := backoffDelay(attempt-1, o, rng)
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("transport: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
			}
		}
		attemptCtx, cancel := context.WithTimeout(ctx, o.DialTimeout)
		nc, err := dialer.DialContext(attemptCtx, "tcp", addr)
		cancel()
		if err == nil {
			return nc, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
		}
	}
	return nil, fmt.Errorf("transport: dial %s: %d attempt(s) failed: %w", addr, o.MaxAttempts, lastErr)
}
