package transport

// OT-pad negotiation (DESIGN.md §14). The pad family rides the same
// Hello/spec exchange as the wire codec: the client's Hello lists the pad
// functions it can run, the server grants one in the spec's PadFunc
// field, and both endpoints hand the grant to their OT extension before
// the base phase. Legacy peers send and read nothing — gob drops the
// unknown fields — so the zero-valued grant means the SHA-256 pad every
// build has always used, and committed golden transcripts stay
// byte-identical: a default client offers no pads at all.

import (
	"fmt"

	"repro/internal/ot"
)

// defaultPadFuncs is the grant preference order of a current build: the
// AES pad when the client can run it (it is strictly cheaper), the
// legacy SHA-256 pad otherwise.
func defaultPadFuncs() []string {
	return []string{string(ot.PadAES), string(ot.PadSHA256)}
}

// grantPadFunc picks the session pad from the client's offer and the
// server's support list: the first supported pad the client offered,
// falling back to SHA-256 (which every peer speaks). The returned grant
// is "" for SHA-256 so legacy clients — which never read the field — see
// the zero value they expect.
func grantPadFunc(offered, supported []string) string {
	for _, name := range supported {
		if name == string(ot.PadSHA256) {
			return ""
		}
		for _, o := range offered {
			if o == name {
				return name
			}
		}
	}
	return ""
}

// validatePadGrant checks the server's pad grant against what the client
// offered: a server must never select a pad the client did not offer
// (SHA-256 excepted — it is the universal fallback).
func validatePadGrant(grant string, offered []string) error {
	if grant == "" || grant == string(ot.PadSHA256) {
		return nil
	}
	for _, o := range offered {
		if o == grant {
			return nil
		}
	}
	return fmt.Errorf("%w: server granted pad %q, offered %v", ot.ErrPadFunc, grant, offered)
}
