package transport_test

// Pad-function negotiation, end to end: the AES↔SHA interop matrix over
// real sessions, refusal of a grant the client never offered, and wire
// determinism of the AES pad across server parallelism.

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/ot"
	"repro/internal/transport"
)

// runPadSession performs one fast batched session with the given client
// pad option and server support list and returns the negotiated spec and
// the labels.
func runPadSession(t *testing.T, clientPad string, serverPads []string) (classify.Spec, []int, []int) {
	t.Helper()
	model, test := trainLinear(t, 41)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X[:4]
	want := localReference(t, trainer, samples)
	srv := quietServer(t, trainer)
	srv.PadFuncs = serverPads

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClientContext(t.Context(), clientSide,
		transport.Options{PadFunc: clientPad}, newDetReader("pad-matrix-client"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.ClassifyBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	spec := fc.Spec()
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("server session did not end")
	}
	return spec, got, want
}

// TestPadNegotiationMatrix drives the AES↔SHA interop matrix: both-AES
// sessions negotiate the AES pad, mixed sessions fall back to the legacy
// SHA-256 pad, and every combination still classifies correctly (a pad
// mismatch between the endpoints would turn every transfer to garbage,
// so correct labels prove both sides agreed).
func TestPadNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name      string
		clientPad string
		serverPad []string // nil = default support (aes preferred)
		wantGrant string
	}{
		{"aes client, default server", "aes", nil, "aes"},
		{"aes client, sha-pinned server", "aes", []string{"sha256"}, ""},
		{"legacy client, default server", "", nil, ""},
		{"sha client, default server", "sha256", nil, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, got, want := runPadSession(t, tc.clientPad, tc.serverPad)
			if spec.PadFunc != tc.wantGrant {
				t.Fatalf("negotiated pad %q, want %q", spec.PadFunc, tc.wantGrant)
			}
			checkLabels(t, got, want, tc.name)
		})
	}
}

// TestPadGrantRefusedWhenUnoffered hand-rolls a misbehaving server that
// grants the AES pad to a client that never offered it. The client must
// refuse the handshake with the typed pad error instead of silently
// running a pad the operator did not opt into.
func TestPadGrantRefusedWhenUnoffered(t *testing.T) {
	model, _ := trainLinear(t, 42)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn := transport.NewConn(serverSide)
		if _, err := transport.Recv[*transport.Hello](conn); err != nil {
			return
		}
		spec := trainer.Spec()
		spec.PadFunc = "aes" // never offered by this client
		_ = conn.Send(&spec)
	}()
	_, err = transport.NewFastClassifyClientContext(t.Context(), clientSide,
		transport.Options{}, newDetReader("pad-refusal-client"))
	if !errors.Is(err, ot.ErrPadFunc) {
		t.Fatalf("handshake error = %v, want ot.ErrPadFunc", err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("rogue server did not finish")
	}
}

// runDeterministicAESBatch is runDeterministicBatch with the AES pad
// negotiated on both ends.
func runDeterministicAESBatch(t *testing.T, parallelism int, samples [][]float64) (sent, received []byte) {
	t.Helper()
	model, _ := trainLinear(t, 43)
	trainer, err := classify.NewTrainer(model, classify.Params{
		Group:       ot.Group512Test(),
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	srv.Rand = newDetReader("aes-batch-determinism-server")
	serverSide, clientSide := net.Pipe()
	rc := &recordingConn{Conn: clientSide}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClientContext(t.Context(), rc,
		transport.Options{PadFunc: "aes"}, newDetReader("aes-batch-determinism-client"))
	if err != nil {
		t.Fatal(err)
	}
	if pad := fc.Spec().PadFunc; pad != "aes" {
		t.Fatalf("negotiated pad %q, want aes", pad)
	}
	if _, err := fc.ClassifyBatch(samples); err != nil {
		t.Fatal(err)
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end")
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]byte(nil), rc.wrote.Bytes()...), append([]byte(nil), rc.read.Bytes()...)
}

// TestBatchWireDeterminismAESPad: the serial-rng discipline must hold on
// the AES pad path too — wire bytes bit-identical across server
// parallelism with fixed randomness.
func TestBatchWireDeterminismAESPad(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sessions")
	}
	model, test := trainLinear(t, 43)
	_ = model
	samples := test.X[:6]
	sent1, recv1 := runDeterministicAESBatch(t, 1, samples)
	sent4, recv4 := runDeterministicAESBatch(t, 4, samples)
	if !bytes.Equal(sent1, sent4) {
		t.Fatal("client wire bytes differ across server parallelism (AES pad)")
	}
	if !bytes.Equal(recv1, recv4) {
		t.Fatal("server wire bytes differ across parallelism (AES pad fan-out leaked into randomness order)")
	}
}
