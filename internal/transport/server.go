package transport

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/entropy"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
)

// Wire aliases for the protocol message types.
type (
	evalRequest   = ompe.EvalRequest
	batchChoice   = ot.BatchChoice
	batchSetup    = ot.BatchSetup
	batchTransfer = ot.BatchTransfer
)

// TrainerSource supplies the trainer a new session binds to. A static
// source (one fixed trainer) is what NewServer installs; a model
// registry implements the same interface to hot-swap models — each
// session captures the source's current trainer exactly once at
// handshake time and keeps it for its whole lifetime, so a swap never
// tears a session between two models, and in-flight sessions drain on
// the version they started with.
type TrainerSource interface {
	CurrentTrainer() *classify.Trainer
}

// StaticTrainer adapts a fixed trainer to the TrainerSource interface.
type StaticTrainer struct{ Trainer *classify.Trainer }

// CurrentTrainer implements TrainerSource.
func (s StaticTrainer) CurrentTrainer() *classify.Trainer { return s.Trainer }

// Server hosts a trainer's protocol endpoints: privacy-preserving
// classification (one-shot and IKNP fast sessions) and, when enabled,
// linear and kernelized similarity evaluation. It serves concurrent
// sessions, one goroutine per connection.
type Server struct {
	source TrainerSource

	// simWeights/simBias enable the linear similarity service when set.
	simWeights []float64
	simBias    float64
	simParams  similarity.Params
	simEnabled bool

	// kernelSimEnabled enables the kernelized similarity service for the
	// trainer's own (polynomial-kernel) model.
	kernelSimParams  similarity.Params
	kernelSimEnabled bool

	// MessageDeadline bounds each message exchange (default
	// DefaultMessageDeadline; set to NoDeadline to disable).
	MessageDeadline time.Duration
	// MaxSessions caps concurrent sessions; connections beyond the cap
	// are rejected with ErrServerBusy. Zero means unlimited.
	MaxSessions int
	// Logf logs session-level events (default log.Printf; set to a no-op
	// for quiet operation).
	Logf func(format string, args ...any)
	// Rand is the entropy source (default crypto/rand.Reader).
	Rand io.Reader
	// WireCodecs lists the envelope codecs this server will grant, in
	// preference order. Nil grants the defaults (binary when the client
	// offers it, gob otherwise); []string{CodecGob} pins a gob-only
	// trainer, which binary-preferring clients negotiate down to.
	WireCodecs []string
	// PadFuncs lists the OT-extension pad families this server will
	// grant, in preference order. Nil grants the defaults (the AES pad
	// when the client offers it, SHA-256 otherwise); []string{"sha256"}
	// pins a legacy-pad server, which AES-offering clients negotiate
	// down to.
	PadFuncs []string
	// DisableResume turns off session-resumption tickets: no tickets are
	// minted, and presented tickets are declined into full handshakes
	// (the behavior a pre-resumption server exhibits implicitly).
	DisableResume bool
	// TicketTTL bounds minted tickets' validity (default
	// DefaultTicketTTL).
	TicketTTL time.Duration

	// ticketOnce lazily builds the per-process ticket mint from Rand the
	// first time a session mints or validates; servers that never see a
	// resumption offer never draw the key (fixed-rand golden sessions
	// stay byte-identical).
	ticketOnce sync.Once
	tick       *ticketer
	tickErr    error

	mu       sync.Mutex
	wg       sync.WaitGroup
	ln       net.Listener
	closed   bool
	sessions map[io.Closer]struct{}
}

// ErrServerBusy is reported to clients rejected by the MaxSessions cap.
var ErrServerBusy = errors.New("server at capacity")

// ErrShuttingDown is reported to clients that connect while the server
// drains.
var ErrShuttingDown = errors.New("server shutting down")

// NewServer builds a server around a fixed classification trainer.
func NewServer(trainer *classify.Trainer) *Server {
	return NewServerSource(StaticTrainer{trainer})
}

// NewServerSource builds a server whose sessions bind to whatever
// trainer the source publishes at their handshake (see TrainerSource).
func NewServerSource(source TrainerSource) *Server {
	return &Server{
		source:          source,
		MessageDeadline: DefaultMessageDeadline,
		Logf:            log.Printf,
		Rand:            rand.Reader,
		sessions:        make(map[io.Closer]struct{}),
	}
}

// EnableSimilarity adds the linear similarity service for the given model.
func (s *Server) EnableSimilarity(w []float64, b float64, params similarity.Params) {
	s.simWeights = append([]float64(nil), w...)
	s.simBias = b
	s.simParams = params
	s.simEnabled = true
}

// EnableKernelSimilarity adds the kernelized (§V-C) similarity service for
// the trainer's own polynomial-kernel model.
func (s *Server) EnableKernelSimilarity(params similarity.Params) {
	s.kernelSimParams = params
	s.kernelSimEnabled = true
}

// Serve accepts sessions on the listener until Close. It returns
// net.ErrClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveConn(conn)
	}
}

// register admits a new session, enforcing the drain state and the
// MaxSessions cap. The session waitgroup counts admitted sessions only,
// and additions happen under the same lock that Close/Shutdown use to
// flip the drain flag, so the Add/Wait race is excluded by construction.
func (s *Server) register(rw io.ReadWriteCloser) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		obs.Add(obs.CtrSessionsRejected, 1)
		return ErrShuttingDown
	}
	if s.MaxSessions > 0 && len(s.sessions) >= s.MaxSessions {
		obs.Add(obs.CtrSessionsRejected, 1)
		return ErrServerBusy
	}
	s.sessions[rw] = struct{}{}
	s.wg.Add(1)
	obs.Add(obs.CtrSessionsServed, 1)
	obs.Set(obs.GaugeSessionsActive, int64(len(s.sessions)))
	return nil
}

func (s *Server) deregister(rw io.ReadWriteCloser) {
	s.mu.Lock()
	delete(s.sessions, rw)
	obs.Set(obs.GaugeSessionsActive, int64(len(s.sessions)))
	s.mu.Unlock()
	s.wg.Done()
}

// ActiveSessions reports the number of sessions currently being served.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close stops accepting and waits for in-flight sessions to drain, with
// no bound on the wait. Use Shutdown to bound it.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}

// Shutdown gracefully stops the server: it closes the listener, rejects
// new sessions with ErrShuttingDown, and waits for in-flight sessions to
// finish. If ctx expires first, the remaining sessions' connections are
// force-closed (their peers see a stream error) and ctx.Err() is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return lnErr
	case <-ctx.Done():
		s.mu.Lock()
		obs.Add(obs.CtrSessionsDrained, int64(len(s.sessions)))
		for rw := range s.sessions {
			_ = rw.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// ServeConn runs one session on an established byte stream (exported so
// tests can drive net.Pipe).
func (s *Server) ServeConn(rw io.ReadWriteCloser) {
	s.serveConn(rw)
}

func (s *Server) serveConn(rw io.ReadWriteCloser) {
	conn := newConnRole(rw, roleServer)
	deadline := s.MessageDeadline
	if deadline < 0 {
		deadline = 0
	}
	conn.SetMessageDeadline(deadline)
	if err := s.register(rw); err != nil {
		// Drain the client's Hello first (over synchronous in-memory
		// pipes, writing before reading would deadlock both sides), then
		// answer it with the rejection; the client's handshake Recv
		// surfaces it as ErrRemote.
		s.logf("transport: reject session: %v", err)
		_, _ = Recv[*Hello](conn)
		_ = conn.SendErr(err)
		_ = conn.Close()
		return
	}
	defer s.deregister(rw)
	defer func() {
		if err := conn.Close(); err != nil && s.Logf != nil {
			s.Logf("transport: close session: %v", err)
		}
	}()
	hello, err := Recv[*Hello](conn)
	if err != nil {
		s.logf("transport: handshake: %v", err)
		return
	}
	// One buffered entropy reader per session: every serve path draws
	// randomness from a single goroutine at a time, so the (unsynchronized)
	// buffer is safe here and turns per-draw getrandom syscalls into a few
	// page-sized reads.
	rng := entropy.Buffered(s.Rand)
	if hello.Service == "resume-info" {
		// Fleet whoami: answer with this process's ticket mint identity so
		// a gateway can steer ticket-bearing redials here. Needs no model.
		if s.DisableResume {
			_ = conn.SendErr(errors.New("transport: resumption disabled"))
			return
		}
		tick, err := s.ticketer()
		if err != nil {
			s.logf("transport: resume-info: %v", err)
			_ = conn.SendErr(err)
			return
		}
		_ = conn.Send(&ResumeInfo{MintID: append([]byte(nil), tick.mintID[:]...)})
		return
	}
	// Capture the session's trainer exactly once: every protocol step of
	// this session — specs, one-shot senders, fast sessions, kernel
	// similarity — derives from this one value, so a registry hot-swap
	// concurrent with the session can never mix model versions.
	trainer := s.source.CurrentTrainer()
	if trainer == nil {
		err := errors.New("transport: no model published")
		s.logf("transport: reject session: %v", err)
		_ = conn.SendErr(err)
		return
	}
	switch hello.Service {
	case "classify":
		err = s.serveClassify(conn, trainer, hello, rng)
	case "similarity-linear":
		err = s.serveSimilarity(conn, hello, rng)
	case "similarity-kernel":
		err = s.serveKernelSimilarity(conn, trainer, hello, rng)
	case "classify-fast":
		err = s.serveClassifyFast(conn, trainer, hello, rng)
	default:
		err = fmt.Errorf("unknown service %q", hello.Service)
	}
	if err != nil && !errors.Is(err, io.EOF) {
		s.logf("transport: session (%s): %v", hello.Service, err)
		_ = conn.SendErr(err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// sessionSpec resolves the backend and codec negotiation for one
// session: the client's requested engine (from its Hello) is granted
// only when the trainer supports it, the codec grant is folded into the
// spec's WireCodec field, and the granted spec is what goes back on the
// wire.
func (s *Server) sessionSpec(trainer *classify.Trainer, hello *Hello) (classify.Spec, error) {
	requested, err := field.ResolveBackend(hello.FieldBackend)
	if err != nil {
		return classify.Spec{}, err
	}
	spec := trainer.SessionSpec(requested)
	spec.WireCodec = s.grantCodec(hello)
	spec.PadFunc = s.grantPad(hello)
	return spec, nil
}

// supportedCodecs resolves the server's codec support list.
func (s *Server) supportedCodecs() []string {
	if len(s.WireCodecs) == 0 {
		return defaultWireCodecs()
	}
	return s.WireCodecs
}

// grantCodec picks the session codec from the client's offer.
func (s *Server) grantCodec(hello *Hello) string {
	return grantWireCodec(hello.WireCodecs, s.supportedCodecs())
}

// supportedPads resolves the server's pad support list.
func (s *Server) supportedPads() []string {
	if len(s.PadFuncs) == 0 {
		return defaultPadFuncs()
	}
	return s.PadFuncs
}

// grantPad picks the session OT pad from the client's offer.
func (s *Server) grantPad(hello *Hello) string {
	return grantPadFunc(hello.PadFuncs, s.supportedPads())
}

// ticketer lazily builds the per-process ticket mint (see Server field
// docs).
func (s *Server) ticketer() (*ticketer, error) {
	s.ticketOnce.Do(func() {
		s.tick, s.tickErr = newTicketer(s.Rand, s.TicketTTL)
	})
	return s.tick, s.tickErr
}

// grantResume resolves a presented ticket against the spec this session
// would otherwise negotiate. Every failure is a silent decline — the
// session proceeds as a full handshake — because stale tickets are the
// expected steady state (expiry, replica restarts, model swaps), not a
// protocol violation.
func (s *Server) grantResume(hello *Hello, spec classify.Spec) *ot.IKNPSenderState {
	if len(hello.ResumeTicket) == 0 {
		return nil
	}
	if s.DisableResume {
		obs.Add(obs.CtrResumeRejected, 1)
		return nil
	}
	tick, err := s.ticketer()
	if err != nil {
		obs.Add(obs.CtrResumeRejected, 1)
		s.logf("transport: decline resumption: %v", err)
		return nil
	}
	st, err := tick.validate(hello.ResumeTicket, hello.Service, specResumeSum(spec))
	if err != nil {
		obs.Add(obs.CtrResumeRejected, 1)
		s.logf("transport: decline resumption: %v", err)
		return nil
	}
	return st
}

// mintTicket seals this session's final OT position into a ticket and
// sends it (the answer to the client's Done). Mint failures are logged
// and swallowed: the client simply redials with a full handshake.
func (s *Server) mintTicket(conn *Conn, fast *classify.FastTrainer, spec classify.Spec, rng io.Reader) {
	tick, err := s.ticketer()
	if err != nil {
		s.logf("transport: mint ticket: %v", err)
		return
	}
	st, err := fast.Snapshot()
	if err != nil {
		s.logf("transport: mint ticket: %v", err)
		return
	}
	ticket, err := tick.mint(rng, "classify-fast", specResumeSum(spec), st)
	if err != nil {
		s.logf("transport: mint ticket: %v", err)
		return
	}
	if err := conn.Send(&SessionTicket{Ticket: ticket}); err == nil {
		obs.Add(obs.CtrTicketsMinted, 1)
	}
}

// serveClassify answers any number of classification queries on one
// session: EvalRequest → BatchSetup → BatchChoice → BatchTransfer, until
// Done or EOF.
func (s *Server) serveClassify(conn *Conn, trainer *classify.Trainer, hello *Hello, rng io.Reader) error {
	spec, err := s.sessionSpec(trainer, hello)
	if err != nil {
		return err
	}
	// The spec crosses in gob (it carries the codec grant); the switch
	// happens right after, before any protocol message.
	if err := conn.Send(&spec); err != nil {
		return err
	}
	if err := conn.UseCodec(spec.WireCodec); err != nil {
		return err
	}
	for {
		payload, err := conn.recvAny()
		if err != nil {
			return err
		}
		switch msg := payload.(type) {
		case *Done:
			return nil
		case *evalRequest:
			sender, err := trainer.NewSessionFor(spec)
			if err != nil {
				return err
			}
			setup, err := sender.HandleRequest(msg, rng)
			if err != nil {
				return err
			}
			if err := conn.Send(setup); err != nil {
				return err
			}
			choice, err := Recv[*batchChoice](conn)
			if err != nil {
				return err
			}
			tr, err := sender.HandleChoice(choice, rng)
			if err != nil {
				return err
			}
			if err := conn.Send(tr); err != nil {
				return err
			}
		case *ClassifyBatchRequest:
			if err := s.serveClassifyBatch(conn, trainer, spec, msg, rng); err != nil {
				return err
			}
		default:
			return fmt.Errorf("transport: unexpected message %T", payload)
		}
	}
}

// serveSimilarity runs one linear similarity evaluation as Alice.
func (s *Server) serveSimilarity(conn *Conn, hello *Hello, rng io.Reader) error {
	if !s.simEnabled {
		return errors.New("similarity service not enabled")
	}
	alice, err := similarity.NewAlice(s.simWeights, s.simBias, s.simParams, rng)
	if err != nil {
		return err
	}
	spec := alice.Spec()
	spec.WireCodec = s.grantCodec(hello)
	if err := conn.Send(&spec); err != nil {
		return err
	}
	if err := conn.UseCodec(spec.WireCodec); err != nil {
		return err
	}
	clear, err := Recv[*similarity.ClearShare](conn)
	if err != nil {
		return err
	}
	if err := alice.HandleClearShare(clear); err != nil {
		return err
	}
	for _, round := range []similarity.Round{similarity.RoundCentroid, similarity.RoundNormal, similarity.RoundArea} {
		header, err := Recv[*RoundHeader](conn)
		if err != nil {
			return err
		}
		if header.Round != round {
			return fmt.Errorf("transport: round %d, want %d", header.Round, round)
		}
		req, err := Recv[*evalRequest](conn)
		if err != nil {
			return err
		}
		setup, err := alice.HandleRequest(round, req, rng)
		if err != nil {
			return err
		}
		if err := conn.Send(setup); err != nil {
			return err
		}
		choice, err := Recv[*batchChoice](conn)
		if err != nil {
			return err
		}
		tr, err := alice.HandleChoice(round, choice, rng)
		if err != nil {
			return err
		}
		if err := conn.Send(tr); err != nil {
			return err
		}
	}
	return nil
}

// serveKernelSimilarity runs one kernelized similarity evaluation as
// Alice: clear share, area-scale announcement, then the centroid round,
// |S_B| normal rounds, and the area round.
func (s *Server) serveKernelSimilarity(conn *Conn, trainer *classify.Trainer, hello *Hello, rng io.Reader) error {
	if !s.kernelSimEnabled {
		return errors.New("kernel similarity service not enabled")
	}
	alice, err := similarity.NewKernelAlice(trainer.Model(), s.kernelSimParams, rng)
	if err != nil {
		return err
	}
	spec := alice.Spec()
	spec.WireCodec = s.grantCodec(hello)
	if err := conn.Send(&spec); err != nil {
		return err
	}
	if err := conn.UseCodec(spec.WireCodec); err != nil {
		return err
	}
	clear, err := Recv[*similarity.KernelClearShare](conn)
	if err != nil {
		return err
	}
	if err := alice.HandleClearShare(clear); err != nil {
		return err
	}
	scale, err := alice.AnnounceAreaScale()
	if err != nil {
		return err
	}
	if err := conn.Send(scale); err != nil {
		return err
	}
	rounds := []similarity.Round{similarity.RoundCentroid}
	for t := 0; t < clear.NumSupport; t++ {
		rounds = append(rounds, similarity.RoundNormal)
	}
	rounds = append(rounds, similarity.RoundArea)
	for _, round := range rounds {
		header, err := Recv[*RoundHeader](conn)
		if err != nil {
			return err
		}
		if header.Round != round {
			return fmt.Errorf("transport: round %d, want %d", header.Round, round)
		}
		req, err := Recv[*evalRequest](conn)
		if err != nil {
			return err
		}
		setup, err := alice.HandleRequest(round, req, rng)
		if err != nil {
			return err
		}
		if err := conn.Send(setup); err != nil {
			return err
		}
		choice, err := Recv[*batchChoice](conn)
		if err != nil {
			return err
		}
		tr, err := alice.HandleChoice(round, choice, rng)
		if err != nil {
			return err
		}
		if err := conn.Send(tr); err != nil {
			return err
		}
	}
	return nil
}

// serveClassifyBatch answers one slow-path batch: B one-shot senders, one
// envelope per protocol step. Senders draw randomness in sample order, so
// a fixed server rng still yields deterministic wire bytes.
func (s *Server) serveClassifyBatch(conn *Conn, trainer *classify.Trainer, spec classify.Spec, req *ClassifyBatchRequest, rng io.Reader) error {
	if len(req.Evals) == 0 {
		return fmt.Errorf("transport: empty classify batch")
	}
	obs.Observe(obs.HistBatchSize, int64(len(req.Evals)))
	senders := make([]*ompe.Sender, len(req.Evals))
	setups := &ClassifyBatchSetups{Setups: make([]*batchSetup, len(req.Evals))}
	for i, eval := range req.Evals {
		sender, err := trainer.NewSessionFor(spec)
		if err != nil {
			return err
		}
		setup, err := sender.HandleRequest(eval, rng)
		if err != nil {
			return fmt.Errorf("transport: batch sample %d: %w", i, err)
		}
		senders[i] = sender
		setups.Setups[i] = setup
	}
	if err := conn.Send(setups); err != nil {
		return err
	}
	choices, err := Recv[*ClassifyBatchChoices](conn)
	if err != nil {
		return err
	}
	if len(choices.Choices) != len(senders) {
		return fmt.Errorf("transport: %d choices for batch of %d", len(choices.Choices), len(senders))
	}
	transfers := &ClassifyBatchTransfers{Transfers: make([]*batchTransfer, len(senders))}
	for i, choice := range choices.Choices {
		tr, err := senders[i].HandleChoice(choice, rng)
		if err != nil {
			return fmt.Errorf("transport: batch sample %d: %w", i, err)
		}
		transfers.Transfers[i] = tr
	}
	return conn.Send(transfers)
}

// fastJob is one queued fast-session request with its stream tag.
type fastJob struct {
	stream  uint32
	payload any
}

// fastJobQueue bounds how many pipelined requests the session worker
// buffers; past this the reader applies backpressure by not reading.
const fastJobQueue = 64

// serveClassifyFast runs an IKNP fast session: one base phase, then any
// number of two-message classification queries or batches until Done or
// EOF. A reader goroutine keeps draining requests while a single worker
// evaluates them in arrival order — pipelined clients are never blocked on
// the server's crypto, and FIFO answering keeps the OT-extension batch
// counters in lockstep.
func (s *Server) serveClassifyFast(conn *Conn, trainer *classify.Trainer, hello *Hello, rng io.Reader) error {
	spec, err := s.sessionSpec(trainer, hello)
	if err != nil {
		return err
	}
	resumeState := s.grantResume(hello, spec)
	spec.ResumeGranted = resumeState != nil
	if err := conn.Send(&spec); err != nil {
		return err
	}
	if err := conn.UseCodec(spec.WireCodec); err != nil {
		return err
	}
	var fast *classify.FastTrainer
	if resumeState != nil {
		// The κ base OTs are skipped entirely: the extension sender is
		// rebuilt from the ticket's snapshot, counters carried forward,
		// and bound to the CURRENT trainer (a hot-swapped model with an
		// unchanged contract serves the new version).
		fast, err = trainer.ResumeFastSessionFor(spec, resumeState)
		if err != nil {
			return err
		}
		obs.Add(obs.CtrSessionsResumed, 1)
	} else {
		setup, err := Recv[*ot.IKNPBaseSetup](conn)
		if err != nil {
			return err
		}
		var choice *ot.IKNPBaseChoice
		fast, choice, err = trainer.NewFastSessionFor(spec, setup, rng)
		if err != nil {
			return err
		}
		if err := conn.Send(choice); err != nil {
			return err
		}
		baseTr, err := Recv[*ot.IKNPBaseTransfer](conn)
		if err != nil {
			return err
		}
		if err := fast.FinishBase(baseTr); err != nil {
			return err
		}
	}

	jobs := make(chan fastJob, fastJobQueue)
	workerErr := make(chan error, 1)
	go func() {
		err := s.runFastWorker(conn, fast, jobs, rng)
		if err != nil {
			// Report to the peer now rather than after session teardown:
			// the client abandons the session and closes, which also
			// unblocks this session's reader.
			_ = conn.SendErr(err)
		}
		workerErr <- err
		// Keep draining so the reader's send never blocks after a failure.
		for range jobs {
		}
	}()

	var readErr error
readLoop:
	for {
		select {
		case werr := <-workerErr:
			close(jobs)
			return werr
		default:
		}
		payload, stream, err := conn.recvStreamAny()
		if err != nil {
			readErr = err
			break
		}
		switch payload.(type) {
		case *Done:
			break readLoop
		case *ompe.FastRequest, *ompe.FastBatchRequest:
			jobs <- fastJob{stream: stream, payload: payload}
		default:
			readErr = fmt.Errorf("transport: unexpected message %T", payload)
			break readLoop
		}
	}
	close(jobs)
	werr := <-workerErr
	if readErr != nil {
		return readErr
	}
	if werr != nil {
		return werr
	}
	// Clean Done: honor a standing mint request. The worker has exited, so
	// the session's OT position is quiescent and safe to snapshot.
	if hello.ResumeOffered && !s.DisableResume {
		s.mintTicket(conn, fast, spec, rng)
	}
	return nil
}

// fastReadyQueue bounds how many computed responses may wait behind the
// flusher: one in flight on the wire plus one buffered keeps the worker
// computing batch N+1 while batch N's envelope is still being written,
// without letting responses pile up unboundedly.
const fastReadyQueue = 2

// runFastWorker evaluates queued fast-session jobs in FIFO order and
// hands each computed response to a flusher goroutine that writes it
// tagged with its request's stream ID. The compute→flush split
// double-buffers the session: encoding and socket writes of response N
// overlap the crypto of request N+1, while the single flusher preserves
// the FIFO response order the OT-extension batch counters require. It
// returns on the first failure or when the job channel closes.
func (s *Server) runFastWorker(conn *Conn, fast *classify.FastTrainer, jobs <-chan fastJob, rng io.Reader) error {
	ready := make(chan fastJob, fastReadyQueue)
	var flushErr error
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		for r := range ready {
			if flushErr != nil {
				continue // keep draining so the worker's send never blocks
			}
			flushErr = conn.SendStream(r.stream, r.payload)
		}
	}()
	var workErr error
	for j := range jobs {
		var resp any
		switch msg := j.payload.(type) {
		case *ompe.FastRequest:
			resp, workErr = fast.HandleQuery(msg, rng)
		case *ompe.FastBatchRequest:
			obs.Observe(obs.HistBatchSize, int64(len(msg.Evals)))
			resp, workErr = fast.HandleBatch(msg, rng)
		}
		if workErr != nil {
			break
		}
		ready <- fastJob{stream: j.stream, payload: resp}
	}
	// Close the ready queue and let already-computed responses flush
	// before reporting: the peer sees every answer that precedes a
	// failure, in order, then the error envelope.
	close(ready)
	<-flushDone
	if workErr != nil {
		return workErr
	}
	return flushErr
}
