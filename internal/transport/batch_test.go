package transport_test

// Batched and pipelined classification serving: correctness against the
// local plaintext-protocol reference, in-flight pipelining under -race,
// wire determinism, and cancellation semantics.

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/ot"
	"repro/internal/transport"
)

// detReader is a deterministic byte stream (SHA-256 in counter mode) so
// two protocol runs can consume identical randomness.
type detReader struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func newDetReader(seed string) *detReader {
	return &detReader{seed: sha256.Sum256([]byte(seed))}
}

func (d *detReader) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		h := sha256.New()
		h.Write(d.seed[:])
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], d.counter)
		d.counter++
		h.Write(c[:])
		d.buf = h.Sum(d.buf)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// localReference computes the plaintext-protocol labels the batch paths
// must match exactly (classify.ClassifyBatch is the acceptance oracle).
func localReference(t *testing.T, trainer *classify.Trainer, samples [][]float64) []int {
	t.Helper()
	want, err := classify.ClassifyBatch(trainer, samples, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func checkLabels(t *testing.T, got, want []int, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: sample %d: got %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestClassifyBatchOverPipe drives the slow-path batched exchange and
// checks every label against the local plaintext reference.
func TestClassifyBatchOverPipe(t *testing.T) {
	model, test := trainLinear(t, 21)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X[:8]
	want := localReference(t, trainer, samples)
	srv := quietServer(t, trainer)

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	cc, err := transport.NewClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cc.ClassifyBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, got, want, "slow batch")
	// A single query on the same session must still work after a batch.
	single, err := cc.Classify(samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if single != want[0] {
		t.Fatalf("post-batch query: got %d, want %d", single, want[0])
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestClassifyFastBatchOverPipe drives the fast-path batch (single
// OT-extension round for all samples) against the local reference.
func TestClassifyFastBatchOverPipe(t *testing.T) {
	model, test := trainLinear(t, 22)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X[:10]
	want := localReference(t, trainer, samples)
	srv := quietServer(t, trainer)

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.ClassifyBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, got, want, "fast batch")
	// Mixed traffic: a single query between batches on the same session.
	single, err := fc.Classify(samples[1])
	if err != nil {
		t.Fatal(err)
	}
	if single != want[1] {
		t.Fatalf("post-batch query: got %d, want %d", single, want[1])
	}
	got2, err := fc.ClassifyBatch(samples[2:6])
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, got2, want[2:6], "second fast batch")
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestClassifyPipelined keeps several batches in flight on one connection
// (run under -race in the tier-1 gate: the reader/worker split on the
// server and the windowed client must be data-race free).
func TestClassifyPipelined(t *testing.T) {
	model, test := trainLinear(t, 23)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X
	want := localReference(t, trainer, samples)
	srv := quietServer(t, trainer)

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.ClassifyPipelined(context.Background(), samples, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, got, want, "pipelined")
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestClassifyPipelinedCanceled cancels mid-pipeline and requires a
// prompt ErrCanceled, a freed server session slot, and no hang.
func TestClassifyPipelinedCanceled(t *testing.T) {
	model, test := trainLinear(t, 24)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fc.ClassifyPipelined(ctx, test.X, 4, 3); !errors.Is(err, transport.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	_ = clientSide.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end after cancellation")
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still registered after cancellation", n)
	}
}

// recordingConn wraps a net.Conn and appends everything written and read
// to per-direction logs.
type recordingConn struct {
	net.Conn
	mu    sync.Mutex
	wrote bytes.Buffer
	read  bytes.Buffer
}

func (rc *recordingConn) Write(p []byte) (int, error) {
	n, err := rc.Conn.Write(p)
	rc.mu.Lock()
	rc.wrote.Write(p[:n])
	rc.mu.Unlock()
	return n, err
}

func (rc *recordingConn) Read(p []byte) (int, error) {
	n, err := rc.Conn.Read(p)
	rc.mu.Lock()
	rc.read.Write(p[:n])
	rc.mu.Unlock()
	return n, err
}

// runDeterministicBatch performs one complete fast-batch exchange with
// fixed randomness on both sides and returns the client's wire bytes in
// each direction.
func runDeterministicBatch(t *testing.T, parallelism int, samples [][]float64) (sent, received []byte) {
	t.Helper()
	model, _ := trainLinear(t, 25)
	trainer, err := classify.NewTrainer(model, classify.Params{
		Group:       ot.Group512Test(),
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	srv.Rand = newDetReader("batch-determinism-server")
	serverSide, clientSide := net.Pipe()
	rc := &recordingConn{Conn: clientSide}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClient(rc, newDetReader("batch-determinism-client"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.ClassifyBatch(samples); err != nil {
		t.Fatal(err)
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end")
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]byte(nil), rc.wrote.Bytes()...), append([]byte(nil), rc.read.Bytes()...)
}

// TestBatchWireDeterminism: with fixed randomness, batch-mode wire bytes
// must be bit-identical across runs and across parallelism levels — the
// serial-rng discipline means worker fan-out touches only pure arithmetic.
func TestBatchWireDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three full sessions")
	}
	model, test := trainLinear(t, 25)
	_ = model
	samples := test.X[:6]
	sent1, recv1 := runDeterministicBatch(t, 1, samples)
	sent2, recv2 := runDeterministicBatch(t, 1, samples)
	sent4, recv4 := runDeterministicBatch(t, 4, samples)
	if !bytes.Equal(sent1, sent2) || !bytes.Equal(recv1, recv2) {
		t.Fatal("identical runs produced different wire bytes")
	}
	if !bytes.Equal(sent1, sent4) {
		t.Fatal("client wire bytes differ across server parallelism")
	}
	if !bytes.Equal(recv1, recv4) {
		t.Fatal("server wire bytes differ across parallelism (worker fan-out leaked into randomness order)")
	}
}

// loopback is a single-goroutine in-memory stream: reads consume what was
// previously written.
type loopback struct{ bytes.Buffer }

func (l *loopback) Close() error { return nil }

// TestConnSendRecvAllocs pins the per-message allocation count of the
// pooled envelope/buffer path. The bound has headroom over the measured
// value (~10 allocs/op for a small payload) but fails loudly if per-conn
// state quietly becomes per-message again.
func TestConnSendRecvAllocs(t *testing.T) {
	rw := &loopback{}
	cc := transport.NewConn(rw)
	msg := &transport.Hello{Service: "alloc-probe"}
	// Warm up: gob sends type descriptions on the first message of a
	// connection; steady-state cost is what matters.
	if err := cc.Send(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.Recv[*transport.Hello](cc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := cc.Send(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := transport.Recv[*transport.Hello](cc); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 24
	if allocs > maxAllocs {
		t.Fatalf("send+recv costs %.1f allocs/op, want <= %d (per-message encoder or buffer construction crept back in)", allocs, maxAllocs)
	}
}

// BenchmarkConnSendRecv measures the steady-state cost of one
// send+receive through the typed envelope layer.
func BenchmarkConnSendRecv(b *testing.B) {
	rw := &loopback{}
	cc := transport.NewConn(rw)
	msg := &transport.Hello{Service: "bench"}
	if err := cc.Send(msg); err != nil {
		b.Fatal(err)
	}
	if _, err := transport.Recv[*transport.Hello](cc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cc.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := transport.Recv[*transport.Hello](cc); err != nil {
			b.Fatal(err)
		}
	}
}

var _ io.ReadWriteCloser = (*loopback)(nil)
