package transport_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/transport"
)

// byteStream adapts a byte slice to the io.ReadWriteCloser surface Conn
// wraps: reads drain the buffer, writes are discarded.
type byteStream struct {
	r *bytes.Reader
}

func (s *byteStream) Read(p []byte) (int, error)  { return s.r.Read(p) }
func (s *byteStream) Write(p []byte) (int, error) { return len(p), nil }
func (s *byteStream) Close() error                { return nil }

// encodeEnvelope produces the wire bytes of a well-formed message, used
// to seed the corpus so mutations start from valid gob framing.
func encodeEnvelope(tb testing.TB, v any) []byte {
	tb.Helper()
	var buf bytes.Buffer
	conn := transport.NewConn(nopCloser{&buf})
	if err := conn.Send(v); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

type nopCloser struct{ io.ReadWriter }

func (nopCloser) Close() error { return nil }

// FuzzConnRecv feeds arbitrary byte streams into the typed receive path:
// malformed, truncated, or hostile gob envelopes must produce an error,
// never a panic or a silently wrong payload. (Same pattern as
// internal/field's FuzzFromBytes.)
func FuzzConnRecv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	valid := encodeEnvelope(f, &transport.Hello{Service: "classify"})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated mid-message
	f.Add(append(valid, valid[:8]...)) // trailing garbage after a frame
	f.Add(encodeEnvelope(f, &transport.Done{}))
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return // gob length prefixes beyond this add nothing but time
		}
		conn := transport.NewConn(&byteStream{r: bytes.NewReader(input)})
		// Drain every frame the stream yields; each must decode cleanly
		// or error. The loop is bounded: every iteration either consumes
		// input or errors out.
		for i := 0; i < 16; i++ {
			v, err := transport.Recv[*transport.Hello](conn)
			if err != nil {
				return
			}
			if v == nil {
				t.Fatal("Recv returned nil payload without error")
			}
		}
	})
}
