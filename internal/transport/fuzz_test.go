package transport_test

import (
	"bytes"
	"encoding"
	"errors"
	"io"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/field"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/svm"
	"repro/internal/transport"
	"repro/internal/wire"
)

// byteStream adapts a byte slice to the io.ReadWriteCloser surface Conn
// wraps: reads drain the buffer, writes are discarded.
type byteStream struct {
	r *bytes.Reader
}

func (s *byteStream) Read(p []byte) (int, error)  { return s.r.Read(p) }
func (s *byteStream) Write(p []byte) (int, error) { return len(p), nil }
func (s *byteStream) Close() error                { return nil }

// encodeEnvelope produces the wire bytes of a well-formed message, used
// to seed the corpus so mutations start from valid gob framing.
func encodeEnvelope(tb testing.TB, v any) []byte {
	tb.Helper()
	var buf bytes.Buffer
	conn := transport.NewConn(nopCloser{&buf})
	if err := conn.Send(v); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

type nopCloser struct{ io.ReadWriter }

func (nopCloser) Close() error { return nil }

// FuzzConnRecv feeds arbitrary byte streams into the typed receive path:
// malformed, truncated, or hostile gob envelopes must produce an error,
// never a panic or a silently wrong payload. (Same pattern as
// internal/field's FuzzFromBytes.)
func FuzzConnRecv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	valid := encodeEnvelope(f, &transport.Hello{Service: "classify"})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated mid-message
	f.Add(append(valid, valid[:8]...)) // trailing garbage after a frame
	f.Add(encodeEnvelope(f, &transport.Done{}))
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return // gob length prefixes beyond this add nothing but time
		}
		conn := transport.NewConn(&byteStream{r: bytes.NewReader(input)})
		// Drain every frame the stream yields; each must decode cleanly
		// or error. The loop is bounded: every iteration either consumes
		// input or errors out.
		for i := 0; i < 16; i++ {
			v, err := transport.Recv[*transport.Hello](conn)
			if err != nil {
				return
			}
			if v == nil {
				t.Fatal("Recv returned nil payload without error")
			}
		}
	})
}

// wireCodecMsg is the serialization contract the consolidated fuzz
// drives: the codec pair plus the four standard interfaces.
type wireCodecMsg interface {
	wire.Msg
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
	io.WriterTo
	io.ReaderFrom
}

func typedWireErr(err error) bool {
	return errors.Is(err, wire.ErrTruncated) ||
		errors.Is(err, wire.ErrOversize) ||
		errors.Is(err, wire.ErrInvalid) ||
		errors.Is(err, wire.ErrNilValue) ||
		errors.Is(err, wire.ErrTrailing)
}

func fuzzEval() *ompe.EvalRequest {
	return &ompe.EvalRequest{
		Pairs:  []ompe.Pair{{V: big.NewInt(7), Z: field.Vec{big.NewInt(1), big.NewInt(2)}}},
		Packed: []byte{1, 2, 3},
	}
}

// wireFuzzSamples covers every envelope payload type that is not already
// fuzzed by its own package (ot and ompe have dedicated targets): the
// transport frame payloads plus the classify/similarity/svm specs.
func wireFuzzSamples() []struct {
	name  string
	proto wireCodecMsg
} {
	simSpec := similarity.Spec{
		Dim: 3, Metric: similarity.DefaultMetric(), MaskDegree: 4,
		CoverFactor: 2, AmplifierBits: 40, FieldBits: 512, FracBits: 12,
		GroupName: "modp512", FieldBackend: "limb", WireCodec: "binary",
	}
	return []struct {
		name  string
		proto wireCodecMsg
	}{
		{"Hello", &transport.Hello{Service: "classify", FieldBackend: "limb", WireCodecs: []string{"binary", "gob"}, PadFuncs: []string{"aes"}, ResumeOffered: true, ResumeTicket: []byte("PPDCTKT1ticketbytes")}},
		{"RoundHeader", &transport.RoundHeader{Round: similarity.Round(2)}},
		{"Done", &transport.Done{}},
		{"ClassifyBatchRequest", &transport.ClassifyBatchRequest{Evals: []*ompe.EvalRequest{fuzzEval()}}},
		{"ClassifyBatchSetups", &transport.ClassifyBatchSetups{Setups: []*ot.BatchSetup{{Setups: []*ot.SenderSetup{{Cs: []*big.Int{big.NewInt(9)}}}}}}},
		{"ClassifyBatchChoices", &transport.ClassifyBatchChoices{Choices: []*ot.BatchChoice{{Choices: []*ot.ReceiverChoice{{PK0: big.NewInt(5)}}}}}},
		{"ClassifyBatchTransfers", &transport.ClassifyBatchTransfers{Transfers: []*ot.BatchTransfer{{Transfers: []*ot.SenderTransfer{{R: big.NewInt(3), Cts: [][]byte{{1}}}}}}}},
		{"ClassifySpec", &classify.Spec{Kernel: svm.Linear(), Dim: 4, Mode: classify.ModeDirect, MaskDegree: 4, CoverFactor: 2, AmplifierBits: 40, FieldBits: 512, FracBits: 12, GroupName: "modp512", FieldBackend: "big", WireCodec: "binary", PadFunc: "aes", ResumeGranted: true}},
		{"SessionTicket", &transport.SessionTicket{Ticket: []byte{0x50, 0x50, 0x44, 0x43, 0x54, 0x4B, 0x54, 0x31, 1, 2, 3, 4}}},
		{"ResumeInfo", &transport.ResumeInfo{MintID: []byte{8, 7, 6, 5, 4, 3, 2, 1}}},
		{"SimilaritySpec", &simSpec},
		{"Metric", &similarity.Metric{Alpha: -1, Beta: 1, L0: 0.5, Theta0: 0.25}},
		{"ClearShare", &similarity.ClearShare{NormM2: 1.5, NormW2: 2.5}},
		{"KernelSpec", &similarity.KernelSpec{Spec: simSpec, Kernel: svm.Polynomial(0.5, 0, 3)}},
		{"KernelClearShare", &similarity.KernelClearShare{KmBmB: 1, KwBwB: 2, NumSupport: 3, AlphaSum: big.NewInt(77)}},
		{"AreaScale", &similarity.AreaScale{C3Exp: 3, TotalExp: 9}},
		{"Kernel", &svm.Kernel{Kind: svm.KernelPolynomial, A0: 1, B0: 2, Degree: 3, Gamma: 0.5, C0: 1.5}},
	}
}

// FuzzWireMsgs throws arbitrary bytes at every envelope payload decoder
// in slice and stream mode: no panics, typed errors only, and clean
// decodes must re-encode to a canonical fixed point.
func FuzzWireMsgs(f *testing.F) {
	samples := wireFuzzSamples()
	for _, s := range samples {
		data, err := s.proto.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return
		}
		for _, s := range samples {
			out := reflect.New(reflect.TypeOf(s.proto).Elem()).Interface().(wireCodecMsg)
			if err := out.UnmarshalBinary(input); err != nil {
				if !typedWireErr(err) {
					t.Fatalf("%s: untyped decode error: %v", s.name, err)
				}
			} else {
				re, err := out.MarshalBinary()
				if err != nil {
					t.Fatalf("%s: decoded value does not re-encode: %v", s.name, err)
				}
				out2 := reflect.New(reflect.TypeOf(s.proto).Elem()).Interface().(wireCodecMsg)
				if err := out2.UnmarshalBinary(re); err != nil {
					t.Fatalf("%s: canonical re-encoding does not decode: %v", s.name, err)
				}
				re2, err := out2.MarshalBinary()
				if err != nil {
					t.Fatalf("%s: re-marshal: %v", s.name, err)
				}
				if !bytes.Equal(re2, re) {
					t.Fatalf("%s: re-encoding is not a fixed point", s.name)
				}
			}
			out3 := reflect.New(reflect.TypeOf(s.proto).Elem()).Interface().(wireCodecMsg)
			if _, err := out3.ReadFrom(bytes.NewReader(input)); err != nil && !typedWireErr(err) {
				t.Fatalf("%s: untyped stream decode error: %v", s.name, err)
			}
		}
	})
}

// encodeBinaryEnvelope produces the framed bytes of a well-formed binary
// envelope, seeding the frame fuzz from valid header + payload layouts.
func encodeBinaryEnvelope(tb testing.TB, v any) []byte {
	tb.Helper()
	var buf bytes.Buffer
	conn := transport.NewConn(nopCloser{&buf})
	if err := conn.UseCodec(transport.CodecBinary); err != nil {
		tb.Fatal(err)
	}
	if err := conn.Send(v); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzBinaryFrameRecv feeds arbitrary byte streams into the binary-codec
// receive path: malformed headers (bad version, unknown tag, hostile
// lengths) and corrupt payloads must produce an error, never a panic, a
// hang, or a silently wrong payload.
func FuzzBinaryFrameRecv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x02, 0x01, 0, 0, 0, 0, 0, 0, 0, 0})             // wrong version
	f.Add([]byte{0x01, 0xEE, 0, 0, 0, 0, 0, 0, 0, 0})             // unknown tag
	f.Add([]byte{0x01, 0x01, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}) // hostile length
	valid := encodeBinaryEnvelope(f, &transport.Hello{Service: "classify", WireCodecs: []string{"binary"}})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(valid, valid...))
	f.Add(encodeBinaryEnvelope(f, &transport.Done{}))
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return
		}
		conn := transport.NewConn(&byteStream{r: bytes.NewReader(input)})
		if err := conn.UseCodec(transport.CodecBinary); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			v, err := transport.Recv[*transport.Hello](conn)
			if err != nil {
				return
			}
			if v == nil {
				t.Fatal("Recv returned nil payload without error")
			}
		}
	})
}
