package transport_test

import (
	"crypto/rand"
	"errors"
	"net"
	"testing"

	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/transport"
)

// withRegistry installs a fresh metrics registry for the test and
// restores the previous default recorder afterwards.
func withRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	g := obs.NewRegistry()
	prev := obs.SwapDefault(g)
	t.Cleanup(func() { obs.SetDefault(prev) })
	return g
}

// TestClassifySessionMetrics locks in the acceptance criterion: one
// classify round trip over net.Pipe must light up every protocol phase
// (mask, decoy, OT, interpolate), the wire-byte counters, and the
// server-side session accounting.
func TestClassifySessionMetrics(t *testing.T) {
	g := withRegistry(t)
	model, test := trainLinear(t, 21)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()

	cc, err := transport.NewClassifyClient(clientSide, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Classify(test.X[0]); err != nil {
		t.Fatal(err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	snap := g.Snapshot()
	for _, phase := range []string{
		obs.PhaseReceiverMask,
		obs.PhaseReceiverDecoy,
		obs.PhaseReceiverInterpolate,
		obs.PhaseSenderMask,
		obs.PhaseOTSenderSetup,
		obs.PhaseOTSenderRespond,
		obs.PhaseOTReceiverChoice,
		obs.PhaseOTReceiverRecover,
		obs.PhaseClassifyRoundTrip,
	} {
		h, ok := snap.Histograms[phase]
		if !ok || h.Count == 0 {
			t.Errorf("phase %s not recorded", phase)
			continue
		}
		if h.Sum <= 0 {
			t.Errorf("phase %s recorded %dns total, want > 0", phase, h.Sum)
		}
	}
	for _, ctr := range []string{
		obs.CtrBytesIn, obs.CtrBytesOut, obs.CtrMsgsIn, obs.CtrMsgsOut,
		obs.CtrOTInstances, obs.CtrClassifyQueries, obs.CtrSessionsServed,
	} {
		if v := snap.Counters[ctr]; v <= 0 {
			t.Errorf("counter %s = %d, want > 0", ctr, v)
		}
	}
	// Both endpoints run in this process over a symmetric pipe, so the
	// envelope byte counts must balance.
	if in, out := snap.Counters[obs.CtrBytesIn], snap.Counters[obs.CtrBytesOut]; in != out {
		t.Errorf("bytes_in %d != bytes_out %d over loopback pipe", in, out)
	}
	if v := snap.Gauges[obs.GaugeSessionsActive]; v != 0 {
		t.Errorf("sessions_active = %d after session end, want 0", v)
	}
}

// TestSessionRejectionMetrics verifies the rejected-session counter and
// the active-session gauge under a MaxSessions cap.
func TestSessionRejectionMetrics(t *testing.T) {
	g := withRegistry(t)
	model, _ := trainLinear(t, 22)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	srv.MaxSessions = 1

	// First session occupies the only slot.
	serverSide1, clientSide1 := net.Pipe()
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		srv.ServeConn(serverSide1)
	}()
	cc, err := transport.NewClassifyClient(clientSide1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if v := g.Gauge(obs.GaugeSessionsActive); v != 1 {
		t.Errorf("sessions_active = %d with one session open, want 1", v)
	}

	// Second session must be rejected.
	serverSide2, clientSide2 := net.Pipe()
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		srv.ServeConn(serverSide2)
	}()
	_, err = transport.NewClassifyClient(clientSide2, rand.Reader)
	if !errors.Is(err, transport.ErrRemote) {
		t.Fatalf("second session error = %v, want ErrRemote", err)
	}
	<-done2

	if v := g.Counter(obs.CtrSessionsRejected); v != 1 {
		t.Errorf("sessions_rejected = %d, want 1", v)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	<-done1
	if v := g.Gauge(obs.GaugeSessionsActive); v != 0 {
		t.Errorf("sessions_active = %d after close, want 0", v)
	}
}
