package transport_test

// Allocation pinning for the binary send path: the point of the
// hand-rolled codec is that a batched request costs no reflection and no
// per-message encoder state, so its steady-state allocation count must
// sit strictly below the gob baseline for the same payload.

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/field"
	"repro/internal/ompe"
	"repro/internal/transport"
)

// allocProbeBatch builds a representative batched classification
// request: 8 evaluations of 4 masked pairs each, with realistic
// field-element magnitudes.
func allocProbeBatch() *transport.ClassifyBatchRequest {
	evals := make([]*ompe.EvalRequest, 8)
	for i := range evals {
		pairs := make([]ompe.Pair, 4)
		for j := range pairs {
			pairs[j] = ompe.Pair{
				V: new(big.Int).Lsh(big.NewInt(int64(1000*i+j+1)), 200),
				Z: field.Vec{
					new(big.Int).Lsh(big.NewInt(int64(j+2)), 180),
					new(big.Int).Lsh(big.NewInt(int64(j+3)), 180),
				},
			}
		}
		evals[i] = &ompe.EvalRequest{Pairs: pairs, Packed: bytes.Repeat([]byte{0xA5}, 64)}
	}
	return &transport.ClassifyBatchRequest{Evals: evals}
}

// sendAllocs measures steady-state allocations per Send of msg under the
// given codec, with writes discarded so buffer growth in the sink does
// not pollute the count.
func sendAllocs(t *testing.T, codec string, msg any) float64 {
	t.Helper()
	conn := transport.NewConn(&byteStream{r: bytes.NewReader(nil)})
	if err := conn.UseCodec(codec); err != nil {
		t.Fatal(err)
	}
	// Warm up: gob ships type descriptors on first use; the binary path
	// grows its reusable encode buffer once.
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(100, func() {
		if err := conn.Send(msg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBinaryBatchSendAllocsBelowGob pins the relative cost: encoding a
// batched request over binary frames must allocate strictly less than
// the reflection-driven gob envelope for the identical payload.
func TestBinaryBatchSendAllocsBelowGob(t *testing.T) {
	msg := allocProbeBatch()
	binAllocs := sendAllocs(t, transport.CodecBinary, msg)
	gobAllocs := sendAllocs(t, transport.CodecGob, msg)
	t.Logf("send allocs/op: binary %.1f, gob %.1f", binAllocs, gobAllocs)
	if binAllocs >= gobAllocs {
		t.Fatalf("binary send costs %.1f allocs/op, gob baseline %.1f — the zero-reflection path regressed", binAllocs, gobAllocs)
	}
	// Absolute pin: the only per-message allocations on the binary path
	// should be the big.Int magnitude buffers (96 field elements in this
	// probe) plus small fixed overhead. Headroom, not exactness.
	const maxBinary = 160
	if binAllocs > maxBinary {
		t.Fatalf("binary send costs %.1f allocs/op, want <= %d (per-message buffer construction crept back in)", binAllocs, maxBinary)
	}
}
