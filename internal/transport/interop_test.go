package transport_test

// Codec interop matrix: every pairing of binary-capable and gob-only
// peers must negotiate a codec both sides speak and produce correct
// protocol results; version skew and hostile grants must surface as
// typed errors, never hangs.

import (
	"crypto/rand"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/ot"
	"repro/internal/transport"
)

// runInteropClassify performs one full classification session against
// srv with the given client options and reports the result and the
// codec the session negotiated.
func runInteropClassify(t *testing.T, srv *transport.Server, opts transport.Options, sample []float64) (int, string) {
	t.Helper()
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	cc, err := transport.NewClassifyClientContext(t.Context(), clientSide, opts, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cc.ClassifyContext(t.Context(), sample)
	if err != nil {
		t.Fatal(err)
	}
	codec := cc.WireCodec()
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("server session did not end")
	}
	return got, codec
}

// TestCodecInteropMatrix pairs binary-preferring and gob-pinned clients
// with binary-capable and gob-only servers: every cell must negotiate
// down cleanly and classify correctly.
func TestCodecInteropMatrix(t *testing.T) {
	model, test := trainLinear(t, 81)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	sample := test.X[0]
	want, err := model.Classify(sample)
	if err != nil {
		t.Fatal(err)
	}

	gobOnly := func(srv *transport.Server) { srv.WireCodecs = []string{transport.CodecGob} }
	cases := []struct {
		name      string
		server    func(*transport.Server)
		opts      transport.Options
		wantCodec string
	}{
		{name: "default-client-default-server", wantCodec: transport.CodecBinary},
		{name: "default-client-gob-only-server", server: gobOnly, wantCodec: transport.CodecGob},
		{name: "gob-pinned-client-default-server", opts: transport.Options{WireCodec: transport.CodecGob}, wantCodec: transport.CodecGob},
		{name: "binary-pinned-client-default-server", opts: transport.Options{WireCodec: transport.CodecBinary}, wantCodec: transport.CodecBinary},
		// A binary-pinned client still completes against a gob-only
		// trainer: gob is the bootstrap codec every build speaks, so the
		// server's fallback grant is always usable.
		{name: "binary-pinned-client-gob-only-server", server: gobOnly, opts: transport.Options{WireCodec: transport.CodecBinary}, wantCodec: transport.CodecGob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := quietServer(t, trainer)
			if tc.server != nil {
				tc.server(srv)
			}
			got, codec := runInteropClassify(t, srv, tc.opts, sample)
			if got != want {
				t.Fatalf("classification drifted across codecs: got %d, want %d", got, want)
			}
			if codec != tc.wantCodec {
				t.Fatalf("negotiated %q, want %q", codec, tc.wantCodec)
			}
		})
	}
}

// TestFastClientCodecInterop runs the fast batched session against a
// gob-only trainer and a binary-capable one: same answers either way.
func TestFastClientCodecInterop(t *testing.T) {
	model, test := trainLinear(t, 82)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X[:3]
	want, err := classify.ClassifyBatch(trainer, samples, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		gobOnly   bool
		wantCodec string
	}{
		{name: "binary", wantCodec: transport.CodecBinary},
		{name: "gob-fallback", gobOnly: true, wantCodec: transport.CodecGob},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := quietServer(t, trainer)
			if tc.gobOnly {
				srv.WireCodecs = []string{transport.CodecGob}
			}
			serverSide, clientSide := net.Pipe()
			done := make(chan struct{})
			go func() {
				defer close(done)
				srv.ServeConn(serverSide)
			}()
			fc, err := transport.NewFastClassifyClientContext(t.Context(), clientSide, transport.Options{}, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if codec := fc.WireCodec(); codec != tc.wantCodec {
				t.Fatalf("negotiated %q, want %q", codec, tc.wantCodec)
			}
			got, err := fc.ClassifyBatchContext(t.Context(), samples)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: got %d, want %d", i, got[i], want[i])
				}
			}
			if err := fc.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				t.Fatal("server session did not end")
			}
		})
	}
}

// TestWireVersionMismatch hand-crafts a binary frame with a future
// version byte: the receiver must fail fast with ErrWireVersion — before
// reading any payload — not hang waiting for bytes that never come.
func TestWireVersionMismatch(t *testing.T) {
	serverSide, clientSide := net.Pipe()
	defer serverSide.Close()
	conn := transport.NewConn(clientSide)
	if err := conn.UseCodec(transport.CodecBinary); err != nil {
		t.Fatal(err)
	}
	conn.SetMessageDeadline(2 * time.Second)
	go func() {
		// version 0x02, tag 1, stream 0, length 0 — and nothing after the
		// header, so a decoder that ignores the version would block.
		_, _ = serverSide.Write([]byte{0x02, 0x01, 0, 0, 0, 0, 0, 0, 0, 0})
	}()
	start := time.Now()
	_, err := transport.Recv[*transport.Hello](conn)
	if !errors.Is(err, transport.ErrWireVersion) {
		t.Fatalf("got %v, want ErrWireVersion", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("version mismatch took %v to surface", elapsed)
	}
}

// TestHostileGrantRejected plays a misbehaving trainer that grants a
// codec the client never offered: the client must refuse the session
// with ErrWireCodec instead of speaking a codec it did not agree to.
func TestHostileGrantRejected(t *testing.T) {
	serverSide, clientSide := net.Pipe()
	srvDone := make(chan error, 1)
	go func() {
		conn := transport.NewConn(serverSide)
		defer conn.Close()
		if _, err := transport.Recv[*transport.Hello](conn); err != nil {
			srvDone <- err
			return
		}
		spec := classify.Spec{WireCodec: transport.CodecBinary}
		srvDone <- conn.Send(&spec)
	}()
	opts := transport.Options{WireCodec: transport.CodecGob, MessageDeadline: 2 * time.Second}
	_, err := transport.NewClassifyClientContext(t.Context(), clientSide, opts, rand.Reader)
	if !errors.Is(err, transport.ErrWireCodec) {
		t.Fatalf("got %v, want ErrWireCodec", err)
	}
	if err := <-srvDone; err != nil {
		t.Fatalf("fake trainer: %v", err)
	}
}
