package transport

// Ticketer unit tests: the mint/validate lifecycle against the clock
// seam — expiry, tampering, replay, foreign mints, and contract drift.
// End-to-end negotiation coverage lives in resume_test.go; these tests
// pin the validation order and the single-use ledger directly.

import (
	"bytes"
	"crypto/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/ot"
)

func testSenderState(batch uint32) *ot.IKNPSenderState {
	st := &ot.IKNPSenderState{
		S:     make([]byte, 16),
		Seeds: make([]byte, 128*16),
		Batch: batch,
	}
	for i := range st.S {
		st.S[i] = byte(i * 7)
	}
	for i := range st.Seeds {
		st.Seeds[i] = byte(i)
	}
	return st
}

func mustTicketer(t *testing.T, ttl time.Duration) *ticketer {
	t.Helper()
	tk, err := newTicketer(rand.Reader, ttl)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestTicketMintValidateRoundTrip(t *testing.T) {
	tk := mustTicketer(t, time.Minute)
	sum := bytes.Repeat([]byte{0xAB}, 32)
	want := testSenderState(42)
	ticket, err := tk.mint(rand.Reader, "classify-fast", sum, want)
	if err != nil {
		t.Fatal(err)
	}
	mintID, ok := TicketMintID(ticket)
	if !ok || !bytes.Equal(mintID, tk.mintID[:]) {
		t.Fatalf("TicketMintID = %x, %v; want %x, true", mintID, ok, tk.mintID)
	}
	got, err := tk.validate(ticket, "classify-fast", sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.S, want.S) || !bytes.Equal(got.Seeds, want.Seeds) || got.Batch != want.Batch {
		t.Fatal("validated state differs from minted state")
	}
}

func TestTicketSingleUse(t *testing.T) {
	tk := mustTicketer(t, time.Minute)
	sum := make([]byte, 32)
	ticket, err := tk.mint(rand.Reader, "classify-fast", sum, testSenderState(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.validate(ticket, "classify-fast", sum); err != nil {
		t.Fatalf("first redemption: %v", err)
	}
	if _, err := tk.validate(ticket, "classify-fast", sum); err == nil || !strings.Contains(err.Error(), "replayed") {
		t.Fatalf("replay error = %v, want replay rejection", err)
	}
}

func TestTicketExpiry(t *testing.T) {
	tk := mustTicketer(t, time.Minute)
	base := time.Now()
	tk.now = func() time.Time { return base }
	sum := make([]byte, 32)
	ticket, err := tk.mint(rand.Reader, "classify-fast", sum, testSenderState(1))
	if err != nil {
		t.Fatal(err)
	}
	tk.now = func() time.Time { return base.Add(time.Minute + time.Nanosecond) }
	if _, err := tk.validate(ticket, "classify-fast", sum); err == nil || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("expired ticket error = %v, want expiry rejection", err)
	}
}

// TestTicketUsedLedgerSweeps: redeemed IDs are forgotten once their
// expiry passes, so a long-lived server's replay map cannot grow without
// bound.
func TestTicketUsedLedgerSweeps(t *testing.T) {
	tk := mustTicketer(t, time.Minute)
	base := time.Now()
	tk.now = func() time.Time { return base }
	sum := make([]byte, 32)
	old, err := tk.mint(rand.Reader, "classify-fast", sum, testSenderState(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.validate(old, "classify-fast", sum); err != nil {
		t.Fatal(err)
	}
	if len(tk.used) != 1 {
		t.Fatalf("used ledger has %d entries, want 1", len(tk.used))
	}
	// Past the old ticket's expiry, validating a fresh one sweeps it out.
	tk.now = func() time.Time { return base.Add(2 * time.Minute) }
	fresh, err := tk.mint(rand.Reader, "classify-fast", sum, testSenderState(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.validate(fresh, "classify-fast", sum); err != nil {
		t.Fatal(err)
	}
	if len(tk.used) != 1 {
		t.Fatalf("used ledger has %d entries after sweep, want 1", len(tk.used))
	}
}

func TestTicketTampering(t *testing.T) {
	tk := mustTicketer(t, time.Minute)
	sum := make([]byte, 32)
	ticket, err := tk.mint(rand.Reader, "classify-fast", sum, testSenderState(9))
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any byte — magic, mint ID, nonce, or sealed payload — must
	// reject; the header is AEAD additional data, so even the cleartext
	// prefix is integrity-bound.
	for i := 0; i < len(ticket); i++ {
		bad := append([]byte(nil), ticket...)
		bad[i] ^= 0x01
		if _, err := tk.validate(bad, "classify-fast", sum); err == nil {
			t.Fatalf("ticket with byte %d flipped validated", i)
		}
	}
	if _, err := tk.validate(ticket[:len(ticket)-1], "classify-fast", sum); err == nil {
		t.Fatal("truncated ticket validated")
	}
	// The untampered original must still be valid (tampering attempts must
	// not burn the ID).
	if _, err := tk.validate(ticket, "classify-fast", sum); err != nil {
		t.Fatalf("original after tamper attempts: %v", err)
	}
}

func TestTicketBindings(t *testing.T) {
	tk := mustTicketer(t, time.Minute)
	sum := bytes.Repeat([]byte{1}, 32)
	ticket, err := tk.mint(rand.Reader, "classify-fast", sum, testSenderState(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.validate(ticket, "classify", sum); err == nil {
		t.Fatal("ticket for another service validated")
	}
	otherSum := bytes.Repeat([]byte{2}, 32)
	if _, err := tk.validate(ticket, "classify-fast", otherSum); err == nil {
		t.Fatal("ticket validated against a drifted contract")
	}
	// A different mint (another replica, or this one restarted) must
	// decline even a pristine ticket.
	other := mustTicketer(t, time.Minute)
	if _, err := other.validate(ticket, "classify-fast", sum); err == nil {
		t.Fatal("foreign mint validated the ticket")
	}
	// None of the failed bindings consumed the ID.
	if _, err := tk.validate(ticket, "classify-fast", sum); err != nil {
		t.Fatalf("ticket after binding failures: %v", err)
	}
}

func TestTicketMintIDRejectsGarbage(t *testing.T) {
	if _, ok := TicketMintID(nil); ok {
		t.Fatal("nil ticket yielded a mint ID")
	}
	if _, ok := TicketMintID([]byte("short")); ok {
		t.Fatal("short ticket yielded a mint ID")
	}
	if _, ok := TicketMintID([]byte("NOTMAGIC01234567")); ok {
		t.Fatal("wrong magic yielded a mint ID")
	}
}
