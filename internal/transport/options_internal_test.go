package transport

import (
	mrand "math/rand"
	"testing"
	"time"
)

// TestBackoffDelaySchedule: delays double from the base, cap at the max,
// and jitter stays within [1/2, 1] of the nominal value.
func TestBackoffDelaySchedule(t *testing.T) {
	o := Options{BackoffBase: 100 * time.Millisecond, BackoffMax: 800 * time.Millisecond}.withDefaults()
	nominal := []time.Duration{
		100 * time.Millisecond, // retry 1
		200 * time.Millisecond, // retry 2
		400 * time.Millisecond, // retry 3
		800 * time.Millisecond, // retry 4 (cap)
		800 * time.Millisecond, // retry 5 (still capped)
	}
	rng := mrand.New(mrand.NewSource(5))
	for i, want := range nominal {
		got := backoffDelay(i+1, o, rng)
		if got < want/2 || got > want {
			t.Fatalf("retry %d: delay %v outside [%v, %v]", i+1, got, want/2, want)
		}
	}
}

// TestBackoffDelayDeterministic: the same jitter seed reproduces the same
// delay sequence.
func TestBackoffDelayDeterministic(t *testing.T) {
	o := Options{}.withDefaults()
	a := mrand.New(mrand.NewSource(11))
	b := mrand.New(mrand.NewSource(11))
	for retry := 1; retry <= 6; retry++ {
		if da, db := backoffDelay(retry, o, a), backoffDelay(retry, o, b); da != db {
			t.Fatalf("retry %d: %v vs %v with identical seeds", retry, da, db)
		}
	}
}

// TestOptionsDefaults: the zero value resolves to the documented
// defaults, and NoDeadline disables the message deadline.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.DialTimeout != DefaultDialTimeout || o.MessageDeadline != DefaultMessageDeadline ||
		o.MaxAttempts != DefaultMaxAttempts || o.BackoffBase != DefaultBackoffBase || o.BackoffMax != DefaultBackoffMax {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if d := (Options{}).messageDeadline(); d != DefaultMessageDeadline {
		t.Fatalf("zero deadline resolved to %v", d)
	}
	if d := (Options{MessageDeadline: NoDeadline}).messageDeadline(); d != 0 {
		t.Fatalf("NoDeadline resolved to %v", d)
	}
}
