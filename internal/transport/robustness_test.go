package transport_test

// Robustness tests for the deadline/backoff options, graceful shutdown,
// the MaxSessions cap, and session-slot recycling after mid-protocol
// client failures.

import (
	"context"
	"crypto/rand"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/faultnet"
	"repro/internal/ot"
	"repro/internal/transport"
)

// newTrainer builds a small linear trainer for robustness tests.
func newTrainer(t *testing.T, seed uint64) (*classify.Trainer, []float64) {
	t.Helper()
	model, test := trainLinear(t, seed)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	return trainer, test.X[0]
}

// TestSessionSlotFreedOnMidOTDisconnect: a client that vanishes after
// receiving BatchSetup but before sending its choice must not pin its
// session slot — with MaxSessions=1, a subsequent client gets served.
func TestSessionSlotFreedOnMidOTDisconnect(t *testing.T) {
	trainer, sample := newTrainer(t, 41)
	srv := quietServer(t, trainer)
	srv.MaxSessions = 1

	// Client A: drive the protocol by hand up to mid-OT, then vanish.
	serverSideA, clientSideA := net.Pipe()
	doneA := make(chan struct{})
	go func() {
		defer close(doneA)
		srv.ServeConn(serverSideA)
	}()
	connA := transport.NewConn(clientSideA)
	if err := connA.Send(&transport.Hello{Service: "classify"}); err != nil {
		t.Fatal(err)
	}
	spec, err := transport.Recv[*classify.Spec](connA)
	if err != nil {
		t.Fatal(err)
	}
	clientA, err := classify.NewClient(*spec)
	if err != nil {
		t.Fatal(err)
	}
	_, req, err := clientA.NewSession(sample, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := connA.Send(req); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.Recv[*ot.BatchSetup](connA); err != nil {
		t.Fatal(err)
	}
	// Mid-OT: the server has sent BatchSetup and waits for BatchChoice.
	if err := connA.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-doneA:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end after mid-OT disconnect")
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("disconnected session still counted: %d active", n)
	}

	// Client B must now be admitted and served correctly.
	serverSideB, clientSideB := net.Pipe()
	doneB := make(chan struct{})
	go func() {
		defer close(doneB)
		srv.ServeConn(serverSideB)
	}()
	cc, err := transport.NewClassifyClient(clientSideB, rand.Reader)
	if err != nil {
		t.Fatalf("client B rejected after A's slot should have freed: %v", err)
	}
	if _, err := cc.Classify(sample); err != nil {
		t.Fatalf("client B classify: %v", err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-doneB:
	case <-time.After(10 * time.Second):
		t.Fatal("server session B did not end")
	}
}

// TestMaxSessionsRejects: with the single slot occupied, the next client
// is rejected with a remote busy error instead of queueing silently.
func TestMaxSessionsRejects(t *testing.T) {
	trainer, sample := newTrainer(t, 42)
	srv := quietServer(t, trainer)
	srv.MaxSessions = 1

	serverSideA, clientSideA := net.Pipe()
	go srv.ServeConn(serverSideA)
	ccA, err := transport.NewClassifyClient(clientSideA, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ccA.Close() }()
	if _, err := ccA.Classify(sample); err != nil {
		t.Fatal(err)
	}

	serverSideB, clientSideB := net.Pipe()
	doneB := make(chan struct{})
	go func() {
		defer close(doneB)
		srv.ServeConn(serverSideB)
	}()
	_, err = transport.NewClassifyClient(clientSideB, rand.Reader)
	if err == nil {
		t.Fatal("second client should be rejected at capacity 1")
	}
	if !errors.Is(err, transport.ErrRemote) || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("want remote busy error, got %v", err)
	}
	select {
	case <-doneB:
	case <-time.After(10 * time.Second):
		t.Fatal("rejected session did not end")
	}
}

// TestShutdownDrainsInFlight: Shutdown with a generous context lets an
// in-flight session finish, then rejects newcomers.
func TestShutdownDrainsInFlight(t *testing.T) {
	trainer, sample := newTrainer(t, 43)
	srv := quietServer(t, trainer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()

	cc, err := transport.DialClassify(ln.Addr().String(), 5*time.Second, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close the listener and enter draining.
	time.Sleep(100 * time.Millisecond)

	// The in-flight session still completes during the drain.
	if _, err := cc.Classify(sample); err != nil {
		t.Fatalf("in-flight classify during drain: %v", err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-shutdownDone:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not complete after sessions drained")
	}

	// New connections are refused (listener is gone).
	if _, err := transport.DialClassify(ln.Addr().String(), 300*time.Millisecond, rand.Reader); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
}

// TestShutdownForceClosesStragglers: when the drain context expires, the
// remaining sessions are force-closed and Shutdown reports ctx.Err().
func TestShutdownForceClosesStragglers(t *testing.T) {
	trainer, _ := newTrainer(t, 44)
	srv := quietServer(t, trainer)

	// A session that will never finish: the client connects and goes
	// silent (no deadline pressure server-side for this test).
	srv.MessageDeadline = transport.NoDeadline
	serverSide, clientSide := net.Pipe()
	sessionDone := make(chan struct{})
	go func() {
		defer close(sessionDone)
		srv.ServeConn(serverSide)
	}()
	conn := transport.NewConn(clientSide)
	if err := conn.Send(&transport.Hello{Service: "classify"}); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.Recv[*classify.Spec](conn); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from bounded shutdown, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("bounded shutdown took %v", elapsed)
	}
	select {
	case <-sessionDone:
	case <-time.After(10 * time.Second):
		t.Fatal("straggler session survived forced shutdown")
	}
	_ = conn.Close()
}

// TestMessageDeadlineTable: the deadline knob across its whole range —
// zero (default applies), tiny (must fail fast with ErrTimeout),
// generous, and disabled.
func TestMessageDeadlineTable(t *testing.T) {
	trainer, sample := newTrainer(t, 45)
	cases := []struct {
		name     string
		deadline time.Duration
		latency  time.Duration // injected per-op latency on the client side
		wantErr  bool
	}{
		{name: "zero-selects-default", deadline: 0, wantErr: false},
		{name: "tiny-fails-fast", deadline: time.Millisecond, latency: 25 * time.Millisecond, wantErr: true},
		{name: "generous-succeeds", deadline: 30 * time.Second, latency: time.Millisecond, wantErr: false},
		{name: "disabled-succeeds", deadline: transport.NoDeadline, wantErr: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := quietServer(t, trainer)
			serverSide, clientSide := net.Pipe()
			done := make(chan struct{})
			go func() {
				defer close(done)
				srv.ServeConn(serverSide)
			}()
			rw := faultnet.Wrap(clientSide, faultnet.Profile{Latency: tc.latency})
			opts := transport.Options{MessageDeadline: tc.deadline}

			result := make(chan error, 1)
			start := time.Now()
			go func() {
				cc, err := transport.NewClassifyClientContext(context.Background(), rw, opts, rand.Reader)
				if err != nil {
					result <- err
					return
				}
				if _, err := cc.Classify(sample); err != nil {
					result <- err
					return
				}
				result <- cc.Close()
			}()
			var err error
			select {
			case err = <-result:
			case <-time.After(30 * time.Second):
				t.Fatal("round trip hung")
			}
			elapsed := time.Since(start)
			if tc.wantErr {
				if err == nil {
					t.Fatal("tiny deadline should have failed")
				}
				if !errors.Is(err, transport.ErrTimeout) {
					t.Fatalf("want ErrTimeout, got %v", err)
				}
				if elapsed > 5*time.Second {
					t.Fatalf("tiny deadline took %v to fail", elapsed)
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			_ = rw.Close()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("server session did not end")
			}
		})
	}
}

// TestContextCancelMidRoundTrip: a context canceled while the exchange is
// blocked (peer gone silent, no message deadline armed) must abandon the
// session promptly with ErrCanceled carrying the context cause.
func TestContextCancelMidRoundTrip(t *testing.T) {
	trainer, sample := newTrainer(t, 46)
	srv := quietServer(t, trainer)
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()

	// Stall the client's view of the network after the handshake bytes;
	// with deadlines disabled only the context can unblock it.
	rw := faultnet.Wrap(clientSide, faultnet.Profile{StallAfter: 500})
	opts := transport.Options{MessageDeadline: transport.NoDeadline}
	cc, err := transport.NewClassifyClientContext(context.Background(), rw, opts, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cc.ClassifyContext(ctx, sample)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled round trip should fail")
	}
	if !errors.Is(err, transport.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause should be the context's deadline, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
	_ = rw.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server session did not end")
	}
}

// TestDialRetryExhausts: a dead address fails after the configured number
// of attempts, and the error says so.
func TestDialRetryExhausts(t *testing.T) {
	opts := transport.Options{
		DialTimeout: 200 * time.Millisecond,
		MaxAttempts: 3,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		JitterSeed:  99,
	}
	start := time.Now()
	_, err := transport.DialClassifyContext(context.Background(), "127.0.0.1:1", opts, rand.Reader)
	if err == nil {
		t.Fatal("dial to dead port should fail")
	}
	if !strings.Contains(err.Error(), "3 attempt(s)") {
		t.Fatalf("error should report attempt count: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retry loop took %v", elapsed)
	}
}

// TestDialRetryRecovers: a listener that appears between attempts is
// reached by a later attempt — the point of retrying at all.
func TestDialRetryRecovers(t *testing.T) {
	trainer, sample := newTrainer(t, 47)
	srv := quietServer(t, trainer)

	// Reserve an address, then free it so the first attempt fails.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	// Bring the server up shortly after the first attempt will have
	// failed.
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the test will fail on dial below
		}
		_ = srv.Serve(ln)
	}()
	defer func() { _ = srv.Close() }()

	opts := transport.Options{
		DialTimeout: time.Second,
		MaxAttempts: 10,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  400 * time.Millisecond,
		JitterSeed:  7,
	}
	cc, err := transport.DialClassifyContext(context.Background(), addr, opts, rand.Reader)
	if err != nil {
		t.Fatalf("retrying dial never reached the late server: %v", err)
	}
	defer func() { _ = cc.Close() }()
	if _, err := cc.Classify(sample); err != nil {
		t.Fatal(err)
	}
}

// TestDialRetryHonorsContext: cancellation during the backoff wait stops
// the retry loop immediately.
func TestDialRetryHonorsContext(t *testing.T) {
	opts := transport.Options{
		DialTimeout: 200 * time.Millisecond,
		MaxAttempts: 50,
		BackoffBase: 500 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := transport.DialClassifyContext(ctx, "127.0.0.1:1", opts, rand.Reader)
	if err == nil {
		t.Fatal("canceled dial should fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context cause, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled retry loop ran %v", elapsed)
	}
}
