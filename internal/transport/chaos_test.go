package transport_test

// Chaos suite: full protocol round trips over faultnet-wrapped in-memory
// connections, across a matrix of injected network faults. The contract
// under test: benign degradation (latency, fragmentation) must not change
// results, and every hard fault must surface as a typed error within the
// deadline budget — never a hang, panic, or silent wrong answer.

import (
	"crypto/rand"
	"errors"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/faultnet"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/transport"
)

// chaosCase is one cell of the fault matrix.
type chaosCase struct {
	name    string
	profile faultnet.Profile
	// wantOK: the round trip must succeed with a correct result.
	wantOK bool
	// wantErr: at least one of these sentinels must be in the error chain.
	wantErr []error
}

// chaosMatrix covers the five required fault types. Hard faults appear at
// two byte offsets each — during the handshake and mid-OT — so both the
// session-setup and round-trip paths are exercised.
func chaosMatrix() []chaosCase {
	hardTimeout := []error{transport.ErrTimeout}
	injected := []error{faultnet.ErrInjected}
	reset := []error{faultnet.ErrReset, faultnet.ErrClosed}
	return []chaosCase{
		{name: "latency", profile: faultnet.Profile{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Seed: 42}, wantOK: true},
		{name: "partial-writes", profile: faultnet.Profile{ChunkWrites: 7}, wantOK: true},
		{name: "latency+partial-writes", profile: faultnet.Profile{Latency: time.Millisecond, ChunkWrites: 64, Seed: 7}, wantOK: true},
		{name: "write-error-handshake", profile: faultnet.Profile{FailWriteAfter: 16}, wantErr: injected},
		// Mid-OT offsets sit past the ~440-byte handshake but inside the
		// ~4KB query exchange (measured for the 512-bit test group).
		{name: "write-error-mid-ot", profile: faultnet.Profile{FailWriteAfter: 1024}, wantErr: injected},
		{name: "read-error-handshake", profile: faultnet.Profile{FailReadAfter: 64}, wantErr: injected},
		{name: "read-error-mid-ot", profile: faultnet.Profile{FailReadAfter: 1200}, wantErr: injected},
		{name: "reset-handshake", profile: faultnet.Profile{ResetAfter: 128}, wantErr: reset},
		{name: "reset-mid-ot", profile: faultnet.Profile{ResetAfter: 1800}, wantErr: reset},
		{name: "stall-handshake", profile: faultnet.Profile{StallAfter: 64}, wantErr: hardTimeout},
		{name: "stall-mid-ot", profile: faultnet.Profile{StallAfter: 2200}, wantErr: hardTimeout},
	}
}

// chaosOpts keeps fault runs fast: short message deadlines so stalls
// resolve in milliseconds, not the 2-minute production default.
var chaosOpts = transport.Options{MessageDeadline: 500 * time.Millisecond}

// chaosCodecs is the envelope-codec dimension of the fault matrix: every
// fault case must behave identically over the binary frames and the
// legacy gob envelopes.
var chaosCodecs = []string{transport.CodecBinary, transport.CodecGob}

// chaosOptsFor pins the session codec on top of the fast-fault options.
func chaosOptsFor(codec string) transport.Options {
	opts := chaosOpts
	opts.WireCodec = codec
	return opts
}

// runChaos wraps the client side of a net.Pipe in the case's fault
// profile, serves the other side, runs fn as the client, and enforces the
// no-hang budget on both the client call and server teardown.
func runChaos(t *testing.T, tc chaosCase, srv *transport.Server, fn func(rw *faultnet.Conn) error) {
	t.Helper()
	serverSide, clientSide := net.Pipe()
	wrapped := faultnet.Wrap(clientSide, tc.profile)
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		srv.ServeConn(serverSide)
	}()

	clientDone := make(chan error, 1)
	start := time.Now()
	go func() { clientDone <- fn(wrapped) }()

	var err error
	select {
	case err = <-clientDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s: client round trip hung", tc.name)
	}
	elapsed := time.Since(start)
	_ = wrapped.Close()

	if tc.wantOK {
		if err != nil {
			t.Fatalf("%s: benign fault broke the protocol: %v", tc.name, err)
		}
	} else {
		if err == nil {
			t.Fatalf("%s: hard fault produced no error", tc.name)
		}
		matched := false
		for _, want := range tc.wantErr {
			if errors.Is(err, want) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("%s: error %v (type %T) matches none of the expected sentinels %v", tc.name, err, err, tc.wantErr)
		}
		// A hard fault must resolve within a small multiple of the
		// message deadline, never by exhausting the watchdog.
		if elapsed > 10*time.Second {
			t.Fatalf("%s: fault took %v to surface", tc.name, elapsed)
		}
	}

	select {
	case <-serverDone:
	case <-time.After(15 * time.Second):
		t.Fatalf("%s: server session did not end", tc.name)
	}
}

// TestChaosClassify drives the full classification round trip through the
// fault matrix.
func TestChaosClassify(t *testing.T) {
	model, test := trainLinear(t, 71)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	sample := test.X[0]
	want, err := model.Classify(sample)
	if err != nil {
		t.Fatal(err)
	}
	d, err := model.Decision(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d) < 1e-6 {
		t.Skip("margin sample; pick another seed")
	}
	for _, codec := range chaosCodecs {
		t.Run(codec, func(t *testing.T) {
			for _, tc := range chaosMatrix() {
				t.Run(tc.name, func(t *testing.T) {
					srv := quietServer(t, trainer)
					srv.MessageDeadline = chaosOpts.MessageDeadline
					runChaos(t, tc, srv, func(rw *faultnet.Conn) error {
						cc, err := transport.NewClassifyClientContext(t.Context(), rw, chaosOptsFor(codec), rand.Reader)
						if err != nil {
							return err
						}
						got, err := cc.ClassifyContext(t.Context(), sample)
						if err != nil {
							return err
						}
						if got != want {
							t.Errorf("silent wrong answer: got %d, want %d", got, want)
						}
						return cc.Close()
					})
				})
			}
		})
	}
}

// TestChaosSimilarity drives the three-round linear similarity protocol
// through the fault matrix.
func TestChaosSimilarity(t *testing.T) {
	modelA, _ := trainLinear(t, 72)
	modelB, _ := trainLinear(t, 73)
	wA, err := modelA.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	wB, err := modelB.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	want, err := similarity.EvaluateLinear(wA, modelA.Bias, wB, modelB.Bias, similarity.DefaultMetric())
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := classify.NewTrainer(modelA, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range chaosCodecs {
		t.Run(codec, func(t *testing.T) {
			for _, tc := range chaosMatrix() {
				t.Run(tc.name, func(t *testing.T) {
					srv := quietServer(t, trainer)
					srv.MessageDeadline = chaosOpts.MessageDeadline
					srv.EnableSimilarity(wA, modelA.Bias, similarity.Params{Group: ot.Group512Test()})
					runChaos(t, tc, srv, func(rw *faultnet.Conn) error {
						got, err := transport.EvaluateSimilarityContext(t.Context(), rw, wB, modelB.Bias, chaosOptsFor(codec), rand.Reader)
						if err != nil {
							return err
						}
						if math.Abs(got.TSquared-want.TSquared) > 1e-4*(1+math.Abs(want.TSquared)) {
							t.Errorf("silent wrong answer: T² %g, want %g", got.TSquared, want.TSquared)
						}
						return nil
					})
				})
			}
		})
	}
}

// TestChaosServerSideFaults wraps the *server's* end of the pipe, so the
// trainer experiences the misbehaving network: its session goroutine must
// still terminate within the deadline budget and the client must see a
// clean error (or a correct result for benign faults).
func TestChaosServerSideFaults(t *testing.T) {
	model, test := trainLinear(t, 74)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	sample := test.X[1]
	for _, codec := range chaosCodecs {
		t.Run(codec, func(t *testing.T) {
			for _, tc := range chaosMatrix() {
				t.Run(tc.name, func(t *testing.T) {
					srv := quietServer(t, trainer)
					srv.MessageDeadline = chaosOpts.MessageDeadline

					serverSide, clientSide := net.Pipe()
					wrapped := faultnet.Wrap(serverSide, tc.profile)
					serverDone := make(chan struct{})
					go func() {
						defer close(serverDone)
						srv.ServeConn(wrapped)
					}()

					clientDone := make(chan error, 1)
					go func() {
						cc, err := transport.NewClassifyClientContext(t.Context(), clientSide, chaosOptsFor(codec), rand.Reader)
						if err != nil {
							clientDone <- err
							return
						}
						if _, err := cc.ClassifyContext(t.Context(), sample); err != nil {
							clientDone <- err
							return
						}
						clientDone <- cc.Close()
					}()

					select {
					case err := <-clientDone:
						if tc.wantOK && err != nil {
							t.Fatalf("benign server-side fault broke the client: %v", err)
						}
						if !tc.wantOK && err == nil {
							t.Fatal("hard server-side fault produced no client error")
						}
					case <-time.After(30 * time.Second):
						t.Fatal("client hung against a faulty server")
					}
					_ = clientSide.Close()
					select {
					case <-serverDone:
					case <-time.After(15 * time.Second):
						t.Fatal("server session did not end")
					}
				})
			}
		})
	}
}

// meterConn counts bytes in each direction, so fast-path chaos offsets
// can be measured rather than hardcoded: the IKNP base handshake is two
// orders of magnitude larger than the slow-path handshake and its size
// varies with group-element encodings.
type meterConn struct {
	net.Conn
	wrote atomic.Int64
	read  atomic.Int64
}

func (m *meterConn) Write(p []byte) (int, error) {
	n, err := m.Conn.Write(p)
	m.wrote.Add(int64(n))
	return n, err
}

func (m *meterConn) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p)
	m.read.Add(int64(n))
	return n, err
}

// measureFastBatch runs one clean fast-session batch and reports the
// client's written/read byte counts at the end of the base handshake and
// at the end of the batch exchange.
func measureFastBatch(t *testing.T, trainer *classify.Trainer, samples [][]float64) (hsWrote, hsRead, totalWrote, totalRead int64) {
	t.Helper()
	srv := quietServer(t, trainer)
	serverSide, clientSide := net.Pipe()
	m := &meterConn{Conn: clientSide}
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClientContext(t.Context(), m, chaosOpts, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hsWrote, hsRead = m.wrote.Load(), m.read.Load()
	if _, err := fc.ClassifyBatchContext(t.Context(), samples); err != nil {
		t.Fatal(err)
	}
	totalWrote, totalRead = m.wrote.Load(), m.read.Load()
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-serverDone:
	case <-time.After(15 * time.Second):
		t.Fatal("measuring run: server session did not end")
	}
	return hsWrote, hsRead, totalWrote, totalRead
}

// TestChaosClassifyFastBatch drives the fast-session batch round trip
// through the fault matrix. Fault offsets are derived from a measured
// clean run: "handshake" faults land inside the IKNP base phase,
// "mid-batch" faults land inside the batch request/response exchange. A
// mid-batch hard fault must free the server's session slot and surface a
// typed error.
func TestChaosClassifyFastBatch(t *testing.T) {
	model, test := trainLinear(t, 75)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X[:4]
	want, err := classify.ClassifyBatch(trainer, samples, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hsWrote, hsRead, totalWrote, totalRead := measureFastBatch(t, trainer, samples)
	if hsWrote < 256 || hsRead < 256 || totalWrote <= hsWrote || totalRead <= hsRead {
		t.Fatalf("implausible measurement: hs=(%d,%d) total=(%d,%d)", hsWrote, hsRead, totalWrote, totalRead)
	}
	midWrote := hsWrote + (totalWrote-hsWrote)/2
	midRead := hsRead + (totalRead-hsRead)/2

	hardTimeout := []error{transport.ErrTimeout}
	injected := []error{faultnet.ErrInjected}
	reset := []error{faultnet.ErrReset, faultnet.ErrClosed}
	cases := []chaosCase{
		{name: "latency", profile: faultnet.Profile{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Seed: 42}, wantOK: true},
		{name: "partial-writes", profile: faultnet.Profile{ChunkWrites: 7}, wantOK: true},
		{name: "write-error-handshake", profile: faultnet.Profile{FailWriteAfter: hsWrote / 2}, wantErr: injected},
		{name: "write-error-mid-batch", profile: faultnet.Profile{FailWriteAfter: midWrote}, wantErr: injected},
		{name: "read-error-handshake", profile: faultnet.Profile{FailReadAfter: hsRead / 2}, wantErr: injected},
		{name: "read-error-mid-batch", profile: faultnet.Profile{FailReadAfter: midRead}, wantErr: injected},
		{name: "reset-handshake", profile: faultnet.Profile{ResetAfter: hsWrote / 2}, wantErr: reset},
		{name: "reset-mid-batch", profile: faultnet.Profile{ResetAfter: midWrote}, wantErr: reset},
		{name: "stall-handshake", profile: faultnet.Profile{StallAfter: hsWrote / 2}, wantErr: hardTimeout},
		{name: "stall-mid-batch", profile: faultnet.Profile{StallAfter: midWrote}, wantErr: hardTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := quietServer(t, trainer)
			srv.MessageDeadline = chaosOpts.MessageDeadline
			runChaos(t, tc, srv, func(rw *faultnet.Conn) error {
				fc, err := transport.NewFastClassifyClientContext(t.Context(), rw, chaosOpts, rand.Reader)
				if err != nil {
					return err
				}
				got, err := fc.ClassifyBatchContext(t.Context(), samples)
				if err != nil {
					return err
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("silent wrong answer: sample %d got %d, want %d", i, got[i], want[i])
					}
				}
				return fc.Close()
			})
			// Hard or benign, the session must be fully deregistered once
			// the server goroutine ends — a mid-batch fault must not leak
			// the slot (runChaos already joined serverDone).
			if n := srv.ActiveSessions(); n != 0 {
				t.Fatalf("%d session slots still held", n)
			}
		})
	}
}

// TestChaosClassifyPipelined drives the pipelined client (several batches
// in flight) through the mid-batch hard faults: typed errors, no hangs,
// freed session slots.
func TestChaosClassifyPipelined(t *testing.T) {
	model, test := trainLinear(t, 76)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X[:12]
	want, err := classify.ClassifyBatch(trainer, samples, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hsWrote, hsRead, totalWrote, totalRead := measureFastBatch(t, trainer, samples[:3])
	_ = hsRead
	midWrote := hsWrote + (totalWrote - hsWrote)
	midRead := totalRead

	injected := []error{faultnet.ErrInjected}
	reset := []error{faultnet.ErrReset, faultnet.ErrClosed}
	cases := []chaosCase{
		{name: "latency", profile: faultnet.Profile{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 7}, wantOK: true},
		{name: "write-error-mid-pipeline", profile: faultnet.Profile{FailWriteAfter: midWrote}, wantErr: injected},
		{name: "read-error-mid-pipeline", profile: faultnet.Profile{FailReadAfter: midRead}, wantErr: injected},
		{name: "reset-mid-pipeline", profile: faultnet.Profile{ResetAfter: midWrote}, wantErr: reset},
		{name: "stall-mid-pipeline", profile: faultnet.Profile{StallAfter: midWrote}, wantErr: []error{transport.ErrTimeout}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := quietServer(t, trainer)
			srv.MessageDeadline = chaosOpts.MessageDeadline
			runChaos(t, tc, srv, func(rw *faultnet.Conn) error {
				fc, err := transport.NewFastClassifyClientContext(t.Context(), rw, chaosOpts, rand.Reader)
				if err != nil {
					return err
				}
				got, err := fc.ClassifyPipelined(t.Context(), samples, 3, 2)
				if err != nil {
					return err
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("silent wrong answer: sample %d got %d, want %d", i, got[i], want[i])
					}
				}
				return fc.Close()
			})
			if n := srv.ActiveSessions(); n != 0 {
				t.Fatalf("%d session slots still held", n)
			}
		})
	}
}
