package transport_test

// Golden-transcript conformance suite. Every scenario runs a complete
// protocol session with deterministic randomness on both sides and
// records the raw bytes in each direction. The recordings are committed
// under testdata/wire/ and pin the wire format: TestGoldenWire re-runs
// each session and fails on any byte drift, then replays the committed
// bytes through the live decoders, so both encode and decode stay
// compatible with every transcript ever shipped.
//
// Regeneration is deliberate, never incidental:
//
//	PPDC_WIRE_REGEN=1 make wire-regen
//
// rewrites the files (after verifying back-to-back runs are
// byte-identical). TestWireDecodeCompat additionally honors
// PPDC_WIRE_DIR, letting CI replay a previous release's transcripts
// against HEAD's decoders.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Container versions: v1 carries no pad field and keeps every transcript
// recorded before pad negotiation byte-identical; v2 appends the
// negotiated pad name. Pad-less scenarios still encode as v1 so a regen
// run leaves the legacy files untouched.
const (
	goldenMagic   = "PPDCWIREv1"
	goldenMagicV2 = "PPDCWIREv2"
)

var goldenDir = filepath.Join("testdata", "wire")

type goldenScenario struct {
	name    string
	service string // classify-serial | classify-batch | similarity
	codec   string // transport.CodecBinary | transport.CodecGob
	group   string // modp512 | x25519
	backend string // big | limb (classify services only)
	pad     string // "" (legacy SHA-256) | aes
}

// goldenScenarios spans the full conformance matrix: each classify
// service across {binary,gob} x {modp512,x25519} x {big,limb}, the
// linear similarity protocol across codecs and groups, and the batched
// classify service with the negotiated fixed-key AES pad on the limb
// backend across codecs and groups.
func goldenScenarios() []goldenScenario {
	var out []goldenScenario
	for _, service := range []string{"classify-serial", "classify-batch"} {
		for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
			for _, group := range []string{"modp512", "x25519"} {
				for _, backend := range []string{"big", "limb"} {
					out = append(out, goldenScenario{
						name:    fmt.Sprintf("%s_%s_%s_%s", service, codec, group, backend),
						service: service, codec: codec, group: group, backend: backend,
					})
				}
			}
		}
	}
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		for _, group := range []string{"modp512", "x25519"} {
			out = append(out, goldenScenario{
				name:    fmt.Sprintf("similarity_%s_%s", codec, group),
				service: "similarity", codec: codec, group: group,
			})
		}
	}
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		for _, group := range []string{"modp512", "x25519"} {
			out = append(out, goldenScenario{
				name:    fmt.Sprintf("classify-batch_%s_%s_limb_aes", codec, group),
				service: "classify-batch", codec: codec, group: group,
				backend: "limb", pad: string(ot.PadAES),
			})
		}
	}
	return out
}

func goldenGroup(t *testing.T, name string) ot.Group {
	t.Helper()
	switch name {
	case "modp512":
		return ot.Group512Test()
	case "x25519":
		return ot.X25519()
	}
	t.Fatalf("unknown group %q", name)
	return nil
}

// runGoldenSession performs one deterministic session and returns the
// client's wire bytes in each direction.
func runGoldenSession(t *testing.T, sc goldenScenario) (c2s, s2c []byte) {
	t.Helper()
	group := goldenGroup(t, sc.group)
	opts := transport.Options{WireCodec: sc.codec, FieldBackend: sc.backend, PadFunc: sc.pad}

	model, test := trainLinear(t, 91)
	params := classify.Params{Group: group, Parallelism: 1}
	if sc.backend == "limb" {
		params.FieldBackend = field.BackendLimb
	}
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		t.Fatal(err)
	}
	srv := quietServer(t, trainer)
	srv.Rand = newDetReader("golden-server-" + sc.name)
	clientRand := newDetReader("golden-client-" + sc.name)

	if sc.service == "similarity" {
		modelB, _ := trainLinear(t, 92)
		wA, err := model.LinearWeights()
		if err != nil {
			t.Fatal(err)
		}
		wB, err := modelB.LinearWeights()
		if err != nil {
			t.Fatal(err)
		}
		srv.EnableSimilarity(wA, model.Bias, similarity.Params{Group: group})
		return recordSession(t, srv, func(rc net.Conn) error {
			_, err := transport.EvaluateSimilarityContext(t.Context(), rc, wB, modelB.Bias, opts, clientRand)
			return err
		})
	}

	switch sc.service {
	case "classify-serial":
		return recordSession(t, srv, func(rc net.Conn) error {
			cc, err := transport.NewClassifyClientContext(t.Context(), rc, opts, clientRand)
			if err != nil {
				return err
			}
			for _, sample := range test.X[:2] {
				if _, err := cc.ClassifyContext(t.Context(), sample); err != nil {
					return err
				}
			}
			return cc.Close()
		})
	case "classify-batch":
		return recordSession(t, srv, func(rc net.Conn) error {
			fc, err := transport.NewFastClassifyClientContext(t.Context(), rc, opts, clientRand)
			if err != nil {
				return err
			}
			if _, err := fc.ClassifyBatchContext(t.Context(), test.X[:4]); err != nil {
				return err
			}
			return fc.Close()
		})
	}
	t.Fatalf("unknown service %q", sc.service)
	return nil, nil
}

// recordSession serves one connection, runs the client body over a
// recording wrapper, and returns the bytes the client wrote and read.
func recordSession(t *testing.T, srv *transport.Server, client func(net.Conn) error) (c2s, s2c []byte) {
	t.Helper()
	serverSide, clientSide := net.Pipe()
	rc := &recordingConn{Conn: clientSide}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	if err := client(rc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("server session did not end")
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]byte(nil), rc.wrote.Bytes()...), append([]byte(nil), rc.read.Bytes()...)
}

// encodeGolden frames a transcript in the wire codec's own container
// format: magic, scenario metadata, then the two direction blobs.
// Scenarios without a negotiated pad encode in the v1 container so a
// regeneration run reproduces the pre-negotiation files byte for byte.
func encodeGolden(sc goldenScenario, c2s, s2c []byte) ([]byte, error) {
	w := wire.NewAppendWriter(nil)
	if sc.pad == "" {
		w.String(goldenMagic)
	} else {
		w.String(goldenMagicV2)
	}
	w.String(sc.name)
	w.String(sc.service)
	w.String(sc.codec)
	w.String(sc.group)
	w.String(sc.backend)
	if sc.pad != "" {
		w.String(sc.pad)
	}
	w.ByteSlice(c2s)
	w.ByteSlice(s2c)
	return w.Bytes(), w.Err()
}

type goldenFile struct {
	scenario goldenScenario
	c2s, s2c []byte
}

func decodeGolden(data []byte) (*goldenFile, error) {
	r := wire.NewReader(data)
	magic := r.String()
	if r.Err() == nil && magic != goldenMagic && magic != goldenMagicV2 {
		return nil, fmt.Errorf("bad transcript magic %q", magic)
	}
	var g goldenFile
	g.scenario.name = r.String()
	g.scenario.service = r.String()
	g.scenario.codec = r.String()
	g.scenario.group = r.String()
	g.scenario.backend = r.String()
	if magic == goldenMagicV2 {
		g.scenario.pad = r.String()
	}
	g.c2s = r.ByteSlice()
	g.s2c = r.ByteSlice()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &g, nil
}

// replayDirection feeds one direction of a recorded session through the
// live decoders: the bootstrap message in gob, the rest in the session
// codec. Returns the number of messages decoded.
func replayDirection(t *testing.T, codec string, stream []byte) int {
	t.Helper()
	conn := transport.NewConn(&byteStream{r: bytes.NewReader(stream)})
	if _, err := conn.RecvAnyForTest(); err != nil {
		t.Fatalf("bootstrap message: %v", err)
	}
	if err := conn.UseCodec(codec); err != nil {
		t.Fatal(err)
	}
	n := 1
	for {
		if _, err := conn.RecvAnyForTest(); err != nil {
			if errors.Is(err, io.EOF) {
				return n
			}
			t.Fatalf("message %d: %v", n, err)
		}
		n++
	}
}

func goldenPath(sc goldenScenario) string {
	return filepath.Join(goldenDir, sc.name+".bin")
}

// TestGoldenWire is the conformance gate. Normal runs re-execute every
// scenario and demand byte-identical wire traffic against the committed
// transcript, then replay the committed bytes through the decoders. With
// PPDC_WIRE_REGEN=1 it rewrites the transcripts instead, refusing to
// write anything that is not reproducible run-to-run.
func TestGoldenWire(t *testing.T) {
	regen := os.Getenv("PPDC_WIRE_REGEN") == "1"
	if regen {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, sc := range goldenScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			c2s, s2c := runGoldenSession(t, sc)
			if regen {
				c2s2, s2c2 := runGoldenSession(t, sc)
				if !bytes.Equal(c2s, c2s2) || !bytes.Equal(s2c, s2c2) {
					t.Fatal("refusing to write a non-deterministic transcript")
				}
				data, err := encodeGolden(sc, c2s, s2c)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(sc), data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(goldenPath(sc))
			if err != nil {
				t.Fatalf("missing golden transcript (run `PPDC_WIRE_REGEN=1 make wire-regen` and commit): %v", err)
			}
			g, err := decodeGolden(raw)
			if err != nil {
				t.Fatal(err)
			}
			if g.scenario != sc {
				t.Fatalf("transcript metadata %+v does not match scenario %+v", g.scenario, sc)
			}
			if !bytes.Equal(c2s, g.c2s) {
				t.Errorf("client-to-server bytes drifted from golden transcript (%d vs %d bytes): %s",
					len(c2s), len(g.c2s), describeDrift(c2s, g.c2s))
			}
			if !bytes.Equal(s2c, g.s2c) {
				t.Errorf("server-to-client bytes drifted from golden transcript (%d vs %d bytes): %s",
					len(s2c), len(g.s2c), describeDrift(s2c, g.s2c))
			}
			if nc := replayDirection(t, g.scenario.codec, g.c2s); nc < 2 {
				t.Fatalf("implausibly short client stream: %d messages", nc)
			}
			if ns := replayDirection(t, g.scenario.codec, g.s2c); ns < 2 {
				t.Fatalf("implausibly short server stream: %d messages", ns)
			}
		})
	}
}

// TestWireDecodeCompat replays every transcript in a directory through
// HEAD's decoders — no session re-run, just decode. CI points
// PPDC_WIRE_DIR at a previous release's testdata/wire to prove HEAD
// still reads every byte stream older builds ever produced.
func TestWireDecodeCompat(t *testing.T) {
	dir := os.Getenv("PPDC_WIRE_DIR")
	if dir == "" {
		dir = goldenDir
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no transcripts under %s", dir)
	}
	for _, path := range entries {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			g, err := decodeGolden(raw)
			if err != nil {
				t.Fatal(err)
			}
			replayDirection(t, g.scenario.codec, g.c2s)
			replayDirection(t, g.scenario.codec, g.s2c)
		})
	}
}

// describeDrift pinpoints the first byte where a recorded stream
// departs from its golden transcript, with a short hex window around
// it — enough to tell a reordered frame from corrupted content.
func describeDrift(got, want []byte) string {
	n := min(len(got), len(want))
	off := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			off = i
			break
		}
	}
	lo := max(off-8, 0)
	hi := min(off+8, n)
	return fmt.Sprintf("first difference at offset %d: got % x, want % x",
		off, got[lo:hi], want[lo:hi])
}
