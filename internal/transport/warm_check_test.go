package transport_test

import (
	"testing"

	"repro/internal/transport"
)

// TestWarmGob guards the canonical gob type-ID warm-up: every entry in
// the wireTypes list must actually encode, otherwise ID assignment
// falls back to first-encode order and gob byte streams stop being
// reproducible across processes (the golden transcripts would drift
// depending on which session type a process sent first).
func TestWarmGob(t *testing.T) {
	if err := transport.WarmGobForTest(); err != nil {
		t.Fatal(err)
	}
}
