package transport

// Session resumption tickets. A fast session's entire server-side crypto
// position after the base phase is the IKNP sender state (see
// internal/ot/resume.go); at a clean session end the server seals that
// state — together with the session's negotiated contract and an expiry —
// inside an opaque AEAD ticket and hands it to the client. A redialing
// client presents the ticket in its Hello; the server unseals it,
// re-checks the contract against the spec it would grant TODAY (so a
// hot-swapped model or renegotiated codec/pad/backend invalidates the
// ticket), and on success both sides skip the κ base OTs entirely.
//
// Failure philosophy: every server-side validation failure — expired,
// tampered, replayed, foreign mint, contract drift — is a silent decline
// into a full handshake, because a client holding a stale ticket did
// nothing wrong. The typed ErrResume is reserved for genuine protocol
// violations observed by the CLIENT: a server granting resumption that
// was never offered, or granting against a contract that diverges from
// the one the ticket was minted under.

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/ot"
	"repro/internal/wire"
)

// ErrResume reports a resumption protocol violation by the peer (a grant
// that was never offered, or a granted contract that diverges from the
// ticket's). Stale or declined tickets never produce it — they fall back
// to a full handshake.
var ErrResume = errors.New("transport: resumption protocol violation")

// DefaultTicketTTL bounds a resumption ticket's validity.
const DefaultTicketTTL = 10 * time.Minute

// ResumeState is everything a client must retain to resume a session: the
// server's sealed ticket, the client's own receiver-side OT snapshot, and
// the contract digest the pair was minted under. It is held in memory
// next to the connection cache (gateway.FleetClient) — the receiver state
// never crosses the wire.
type ResumeState struct {
	// Ticket is the server's opaque sealed ticket.
	Ticket []byte
	// Receiver is the client's OT-extension position at ticket time.
	Receiver *ot.IKNPReceiverState
	// SpecSum digests the negotiated contract (specResumeSum); a granted
	// spec that hashes differently means the server's contract moved and
	// the cached receiver state must not be reused.
	SpecSum []byte
	// Service is the service the state belongs to ("classify-fast").
	Service string
}

// SessionTicket delivers the sealed resumption ticket: the server answers
// a clean Done with it when the session's Hello offered resumption.
type SessionTicket struct {
	Ticket []byte
}

// ResumeInfo answers the "resume-info" service with the server process's
// minting identity, so a gateway can route ticket-bearing redials back to
// the replica that can actually unseal them.
type ResumeInfo struct {
	MintID []byte
}

// Ticket layout: a cleartext header (magic + mint ID, so gateways can
// route without the sealing key) followed by the GCM nonce and the sealed
// payload. The header doubles as the AEAD's additional data, so a spliced
// or re-headered ticket fails to open.
const (
	ticketMagic     = "PPDCTKT1"
	ticketMintIDLen = 8
	ticketHeaderLen = len(ticketMagic) + ticketMintIDLen
	ticketNonceLen  = 12
	ticketIDLen     = 16
	ticketKeyLen    = 32
)

// TicketMintID extracts the minting identity from a ticket's cleartext
// header without unsealing it (the gateway's affinity key). It reports
// false for anything that is not shaped like a ticket.
func TicketMintID(ticket []byte) ([]byte, bool) {
	if len(ticket) < ticketHeaderLen || string(ticket[:len(ticketMagic)]) != ticketMagic {
		return nil, false
	}
	return ticket[len(ticketMagic):ticketHeaderLen], true
}

// specResumeSum digests the negotiated session contract a ticket binds:
// the full spec — kernel shape, field, group, backend, codec, pad — with
// the ResumeGranted negotiation outcome cleared, so the digest of a
// granted-resumption spec matches the digest its ticket was minted under.
func specResumeSum(spec classify.Spec) []byte {
	spec.ResumeGranted = false
	data, err := wire.Marshal(&spec)
	if err != nil {
		return nil
	}
	sum := sha256.Sum256(data)
	return sum[:]
}

// ticketPayload is the sealed interior of a ticket.
type ticketPayload struct {
	// ID is the single-use identity for replay suppression.
	ID []byte
	// Expiry is the validity bound (Unix nanoseconds).
	Expiry int64
	// Service and SpecSum pin the contract the state belongs to.
	Service string
	SpecSum []byte
	// Sender is the server-side OT position being amortized.
	Sender ot.IKNPSenderState
}

// EncodeWire implements the wire codec.
func (p *ticketPayload) EncodeWire(w *wire.Writer) {
	w.ByteSlice(p.ID)
	w.Uvarint(uint64(p.Expiry))
	w.String(p.Service)
	w.ByteSlice(p.SpecSum)
	p.Sender.EncodeWire(w)
}

// DecodeWire implements the wire codec.
func (p *ticketPayload) DecodeWire(r *wire.Reader) {
	p.ID = r.ByteSlice()
	p.Expiry = int64(r.Uvarint())
	p.Service = r.String()
	p.SpecSum = r.ByteSlice()
	p.Sender.DecodeWire(r)
}

// ticketer mints and validates this process's tickets. The sealing key
// and mint ID are drawn once, lazily, from the server's entropy source;
// tickets are strictly per-process — a restart (or another replica)
// cannot unseal them, which is exactly the property the gateway's
// affinity routing works around.
type ticketer struct {
	aead   cipher.AEAD
	mintID [ticketMintIDLen]byte
	ttl    time.Duration

	mu sync.Mutex
	// used records redeemed ticket IDs until their expiry passes (lazy
	// sweep on each validation), making every ticket single-use.
	used map[[ticketIDLen]byte]int64
	// now is the clock (a test seam for expiry coverage).
	now func() time.Time
}

func newTicketer(rand io.Reader, ttl time.Duration) (*ticketer, error) {
	if ttl <= 0 {
		ttl = DefaultTicketTTL
	}
	var key [ticketKeyLen]byte
	if _, err := io.ReadFull(rand, key[:]); err != nil {
		return nil, fmt.Errorf("transport: ticket key: %w", err)
	}
	t := &ticketer{ttl: ttl, used: make(map[[ticketIDLen]byte]int64), now: time.Now}
	if _, err := io.ReadFull(rand, t.mintID[:]); err != nil {
		return nil, fmt.Errorf("transport: ticket mint id: %w", err)
	}
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	if t.aead, err = cipher.NewGCM(blk); err != nil {
		return nil, err
	}
	return t, nil
}

// mint seals one ticket. The ticket ID and nonce come from the session's
// own rng — never a process-global source — so sessions driven by fixed
// test readers produce bit-identical wire bytes at any parallelism.
func (t *ticketer) mint(rng io.Reader, service string, specSum []byte, st *ot.IKNPSenderState) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("transport: mint ticket: nil sender state")
	}
	var id [ticketIDLen]byte
	if _, err := io.ReadFull(rng, id[:]); err != nil {
		return nil, err
	}
	var nonce [ticketNonceLen]byte
	if _, err := io.ReadFull(rng, nonce[:]); err != nil {
		return nil, err
	}
	payload := &ticketPayload{
		ID:      id[:],
		Expiry:  t.now().Add(t.ttl).UnixNano(),
		Service: service,
		SpecSum: specSum,
		Sender:  *st,
	}
	plain, err := wire.Marshal(payload)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, ticketHeaderLen+ticketNonceLen+len(plain)+t.aead.Overhead())
	out = append(out, ticketMagic...)
	out = append(out, t.mintID[:]...)
	out = append(out, nonce[:]...)
	return t.aead.Seal(out, nonce[:], plain, out[:ticketHeaderLen]), nil
}

// validate unseals and checks one presented ticket, consuming its ID on
// success. Every returned error means "run a full handshake", never "fail
// the session".
func (t *ticketer) validate(ticket []byte, service string, specSum []byte) (*ot.IKNPSenderState, error) {
	if len(ticket) < ticketHeaderLen+ticketNonceLen+t.aead.Overhead() {
		return nil, fmt.Errorf("transport: ticket too short")
	}
	mintID, ok := TicketMintID(ticket)
	if !ok {
		return nil, fmt.Errorf("transport: bad ticket magic")
	}
	if !bytes.Equal(mintID, t.mintID[:]) {
		return nil, fmt.Errorf("transport: ticket from a different mint")
	}
	nonce := ticket[ticketHeaderLen : ticketHeaderLen+ticketNonceLen]
	plain, err := t.aead.Open(nil, nonce, ticket[ticketHeaderLen+ticketNonceLen:], ticket[:ticketHeaderLen])
	if err != nil {
		return nil, fmt.Errorf("transport: ticket unseal: %w", err)
	}
	var payload ticketPayload
	if err := wire.Unmarshal(plain, &payload); err != nil {
		return nil, fmt.Errorf("transport: ticket payload: %w", err)
	}
	if len(payload.ID) != ticketIDLen {
		return nil, fmt.Errorf("transport: ticket id malformed")
	}
	nowNS := t.now().UnixNano()
	if payload.Expiry <= nowNS {
		return nil, fmt.Errorf("transport: ticket expired")
	}
	if payload.Service != service {
		return nil, fmt.Errorf("transport: ticket for service %q, session wants %q", payload.Service, service)
	}
	if !bytes.Equal(payload.SpecSum, specSum) {
		return nil, fmt.Errorf("transport: ticket contract diverges from current spec")
	}
	var id [ticketIDLen]byte
	copy(id[:], payload.ID)
	t.mu.Lock()
	for old, exp := range t.used {
		if exp <= nowNS {
			delete(t.used, old)
		}
	}
	if _, dup := t.used[id]; dup {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: ticket replayed")
	}
	t.used[id] = payload.Expiry
	t.mu.Unlock()
	st := payload.Sender
	return &st, nil
}

// EncodeWire implements the wire codec.
func (t *SessionTicket) EncodeWire(w *wire.Writer) { w.ByteSlice(t.Ticket) }

// DecodeWire implements the wire codec.
func (t *SessionTicket) DecodeWire(r *wire.Reader) { t.Ticket = r.ByteSlice() }

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *SessionTicket) MarshalBinary() ([]byte, error) { return wire.Marshal(t) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *SessionTicket) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, t) }

// WriteTo implements io.WriterTo.
func (t *SessionTicket) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, t) }

// ReadFrom implements io.ReaderFrom.
func (t *SessionTicket) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, t) }

// EncodeWire implements the wire codec.
func (i *ResumeInfo) EncodeWire(w *wire.Writer) { w.ByteSlice(i.MintID) }

// DecodeWire implements the wire codec.
func (i *ResumeInfo) DecodeWire(r *wire.Reader) { i.MintID = r.ByteSlice() }

// MarshalBinary implements encoding.BinaryMarshaler.
func (i *ResumeInfo) MarshalBinary() ([]byte, error) { return wire.Marshal(i) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (i *ResumeInfo) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, i) }

// WriteTo implements io.WriterTo.
func (i *ResumeInfo) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, i) }

// ReadFrom implements io.ReaderFrom.
func (i *ResumeInfo) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, i) }
