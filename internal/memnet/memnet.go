// Package memnet provides an in-memory net.Listener/dialer pair built on
// net.Pipe, for fleets larger than the process's file-descriptor budget:
// a 10k-client soak over TCP costs ~4 fds per client (client, gateway
// in/out, replica), which blows the usual RLIMIT_NOFILE long before the
// protocol stack is the bottleneck. Pipes cost zero descriptors while
// still exercising the real transport framing, deadlines, and gateway
// splicing (net.Pipe is synchronous and deadline-capable, which is if
// anything harsher on the concurrency discipline than buffered TCP).
package memnet

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// addr is the listener's synthetic address.
type addr struct{ name string }

func (a addr) Network() string { return "mem" }
func (a addr) String() string  { return a.name }

// Listener is an in-memory net.Listener. Dial hands the peer half of a
// net.Pipe to Accept.
type Listener struct {
	name    string
	backlog chan net.Conn
	once    sync.Once
	closed  chan struct{}
}

// Listen creates an in-memory listener with a synthetic address name.
func Listen(name string) *Listener {
	return &Listener{
		name:    name,
		backlog: make(chan net.Conn, 64),
		closed:  make(chan struct{}),
	}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener. Pending dials fail with net.ErrClosed.
func (l *Listener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return addr{l.name} }

// Dial opens a new connection to the listener, honoring ctx while the
// accept backlog is full.
func (l *Listener) Dial(ctx context.Context) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("memnet: dial %s: %w", l.name, net.ErrClosed)
	default:
	}
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("memnet: dial %s: %w", l.name, net.ErrClosed)
	case <-ctx.Done():
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("memnet: dial %s: %w", l.name, ctx.Err())
	}
}

// Network is a name-to-listener directory, so a gateway configured with
// replica address strings can resolve them to in-memory listeners.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
}

// NewNetwork builds an empty directory.
func NewNetwork() *Network { return &Network{listeners: map[string]*Listener{}} }

// Listen registers and returns a listener under name, replacing any
// previous registration.
func (n *Network) Listen(name string) *Listener {
	l := Listen(name)
	n.mu.Lock()
	n.listeners[name] = l
	n.mu.Unlock()
	return l
}

// Dial connects to the named listener.
func (n *Network) Dial(ctx context.Context, name string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memnet: dial %s: no such listener", name)
	}
	return l.Dial(ctx)
}
