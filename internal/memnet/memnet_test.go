package memnet

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestListenerDialAccept(t *testing.T) {
	ln := Listen("svc")
	defer func() { _ = ln.Close() }()
	if ln.Addr().String() != "svc" || ln.Addr().Network() != "mem" {
		t.Fatalf("addr = %v/%v", ln.Addr().Network(), ln.Addr())
	}

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		buf := make([]byte, 5)
		if _, err := conn.Read(buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()

	conn, err := ln.Dial(context.Background())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatalf("server side: %v", err)
	}
}

func TestListenerClose(t *testing.T) {
	ln := Listen("svc")
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept after close: %v", err)
	}
	if _, err := ln.Dial(context.Background()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("dial after close: %v", err)
	}
	// Double close is a no-op.
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialHonorsContextWhenBacklogFull(t *testing.T) {
	ln := Listen("svc")
	defer func() { _ = ln.Close() }()
	// Fill the backlog; nothing accepts.
	for i := 0; i < cap(ln.backlog); i++ {
		if _, err := ln.Dial(context.Background()); err != nil {
			t.Fatalf("fill dial %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := ln.Dial(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial with full backlog: %v", err)
	}
}

func TestNetworkDirectory(t *testing.T) {
	n := NewNetwork()
	ln := n.Listen("replica-0")
	defer func() { _ = ln.Close() }()

	go func() {
		conn, err := ln.Accept()
		if err == nil {
			_ = conn.Close()
		}
	}()
	conn, err := n.Dial(context.Background(), "replica-0")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	_ = conn.Close()

	if _, err := n.Dial(context.Background(), "nope"); err == nil {
		t.Fatal("dialing an unregistered name should fail")
	}
}
