package kstest_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/kstest"
)

func TestStatisticHandComputed(t *testing.T) {
	// F1 jumps at {1,2,3}, F2 at {2,3,4}: sup|F1−F2| = 1/3 (at x in [1,2)).
	a := []float64{1, 2, 3}
	b := []float64{2, 3, 4}
	d, err := kstest.Statistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.0/3) > 1e-12 {
		t.Fatalf("D = %v, want 1/3", d)
	}
}

func TestStatisticIdenticalSamples(t *testing.T) {
	a := []float64{0.3, -0.2, 0.9, 0.1}
	d, err := kstest.Statistic(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("identical samples: D = %v", d)
	}
}

func TestStatisticDisjointSupports(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := kstest.Statistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("disjoint supports: D = %v, want 1", d)
	}
}

func TestStatisticSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		a := randSample(rng, 30)
		b := randSample(rng, 40)
		ab, err := kstest.Statistic(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := kstest.Statistic(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ab-ba) > 1e-12 {
			t.Fatalf("not symmetric: %v vs %v", ab, ba)
		}
	}
}

// TestStatisticDetectsShift: the statistic must grow with distribution
// shift.
func TestStatisticDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	base := randSample(rng, 400)
	prev := 0.0
	for _, shift := range []float64{0, 0.2, 0.5, 1.0} {
		shifted := make([]float64, len(base))
		for i, v := range base {
			shifted[i] = v + shift
		}
		other := randSample(rng, 400)
		for i := range other {
			other[i] += shift
		}
		d, err := kstest.Statistic(base, other)
		if err != nil {
			t.Fatal(err)
		}
		if shift > 0 && d <= prev {
			t.Fatalf("shift %v: D=%v did not grow (prev %v)", shift, d, prev)
		}
		prev = d
	}
}

func TestScaledStatistic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12, 13}
	d, err := kstest.ScaledStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 * math.Sqrt(3.0*4.0/7.0)
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("scaled = %v, want %v", d, want)
	}
}

func TestAverageOverDimensions(t *testing.T) {
	a := [][]float64{{1, 10}, {2, 11}, {3, 12}}
	b := [][]float64{{1, 20}, {2, 21}, {3, 22}}
	// Dim 0 identical (D=0); dim 1 disjoint (D=1, scaled √1.5).
	avg, err := kstest.AverageOverDimensions(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(1.5) / 2
	if math.Abs(avg-want) > 1e-12 {
		t.Fatalf("average = %v, want %v", avg, want)
	}
}

func TestAverageValidation(t *testing.T) {
	if _, err := kstest.AverageOverDimensions(nil, nil); err == nil {
		t.Fatal("empty samples should fail")
	}
	a := [][]float64{{1, 2}}
	b := [][]float64{{1}}
	if _, err := kstest.AverageOverDimensions(a, b); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	c := [][]float64{{1, 2}, {3}}
	if _, err := kstest.AverageOverDimensions(c, a); err == nil {
		t.Fatal("ragged rows should fail")
	}
}

func TestStatisticEmpty(t *testing.T) {
	if _, err := kstest.Statistic(nil, []float64{1}); err == nil {
		t.Fatal("empty sample should fail")
	}
}

func TestPValue(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	same1, same2 := randSample(rng, 200), randSample(rng, 200)
	pSame, err := kstest.PValue(same1, same2)
	if err != nil {
		t.Fatal(err)
	}
	if pSame < 0.01 {
		t.Fatalf("same-distribution p-value %v suspiciously small", pSame)
	}
	shifted := make([]float64, 200)
	for i := range shifted {
		shifted[i] = rng.Float64() + 1.5
	}
	pDiff, err := kstest.PValue(same1, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if pDiff > 1e-6 {
		t.Fatalf("disjoint-distribution p-value %v too large", pDiff)
	}
	if pDiff < 0 || pSame > 1 {
		t.Fatal("p-values out of [0,1]")
	}
}

func randSample(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}
