// Package kstest implements the two-sample Kolmogorov–Smirnov statistic,
// the statistical baseline the paper compares its similarity metric
// against (Table II). The paper reports, per subset pair, the K-S
// statistic averaged over the feature dimensions, scaled by the effective
// sample factor.
package kstest

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptySample reports an empty input sample.
var ErrEmptySample = errors.New("kstest: empty sample")

// Statistic returns the two-sample K-S statistic
// D = sup_x |F1(x) − F2(x)| for empirical CDFs F1, F2.
func Statistic(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Ties must advance both CDFs together: the supremum is taken
		// between jump points, never in the middle of a shared jump.
		switch {
		case sa[i] < sb[j]:
			i++
		case sb[j] < sa[i]:
			j++
		default:
			tie := sa[i]
			for i < len(sa) && sa[i] == tie {
				i++
			}
			for j < len(sb) && sb[j] == tie {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// ScaledStatistic returns D·√(n·m/(n+m)), the normalized form whose null
// distribution is the Kolmogorov distribution; this is the magnitude the
// paper's Table II "K-S Test Average" column reports.
func ScaledStatistic(a, b []float64) (float64, error) {
	d, err := Statistic(a, b)
	if err != nil {
		return 0, err
	}
	n, m := float64(len(a)), float64(len(b))
	return d * math.Sqrt(n*m/(n+m)), nil
}

// AverageOverDimensions runs the scaled two-sample K-S test per feature
// dimension and averages, the paper's Table II procedure ("we get the
// average value over the 8 dimensions' K-S test results").
func AverageOverDimensions(a, b [][]float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	dim := len(a[0])
	if dim == 0 || len(b[0]) != dim {
		return 0, fmt.Errorf("kstest: dimension mismatch (%d vs %d)", dim, len(b[0]))
	}
	colA := make([]float64, len(a))
	colB := make([]float64, len(b))
	sum := 0.0
	for j := 0; j < dim; j++ {
		for i, row := range a {
			if len(row) != dim {
				return 0, fmt.Errorf("kstest: ragged row %d in first sample", i)
			}
			colA[i] = row[j]
		}
		for i, row := range b {
			if len(row) != dim {
				return 0, fmt.Errorf("kstest: ragged row %d in second sample", i)
			}
			colB[i] = row[j]
		}
		d, err := ScaledStatistic(colA, colB)
		if err != nil {
			return 0, err
		}
		sum += d
	}
	return sum / float64(dim), nil
}

// PValue approximates the asymptotic two-sample K-S p-value via the
// Kolmogorov distribution Q(λ) = 2·Σ_{k≥1} (−1)^{k−1}·exp(−2k²λ²).
func PValue(a, b []float64) (float64, error) {
	lambda, err := ScaledStatistic(a, b)
	if err != nil {
		return 0, err
	}
	if lambda == 0 {
		return 1, nil
	}
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		sum = 0
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}
