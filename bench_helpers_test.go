package ppdc_test

import (
	"math"
	"math/big"
	"math/rand/v2"

	"repro/internal/field"
	"repro/internal/kstest"
	"repro/internal/mvpoly"
	"repro/internal/ompe"
)

func ksAverage(a, b [][]float64) (float64, error) {
	return kstest.AverageOverDimensions(a, b)
}

// planeForDim deterministically builds a random unit hyperplane.
func planeForDim(dim int, seed uint64) ([]float64, float64) {
	rng := rand.New(rand.NewPCG(seed, uint64(dim)))
	w := make([]float64, dim)
	norm := 0.0
	for i := range w {
		w[i] = rng.NormFloat64()
		norm += w[i] * w[i]
	}
	for i := range w {
		w[i] /= math.Sqrt(norm)
	}
	return w, 0.1 * (rng.Float64()*2 - 1)
}

func fieldDefault() *field.Field { return field.Default() }

func linearEvalForBench(f *field.Field, w field.Vec) (ompe.Evaluator, error) {
	return mvpoly.NewLinear(f, w, big.NewInt(1))
}
