package ppdc_test

import (
	"crypto/rand"
	"fmt"

	ppdc "repro"
)

// ExampleClassify demonstrates one private classification: the trainer's
// model and the client's sample never meet in the clear.
func ExampleClassify() {
	x := [][]float64{{0.9, 0.4}, {0.6, 0.8}, {-0.9, -0.4}, {-0.6, -0.8}}
	y := []int{1, 1, -1, -1}
	model, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{Group: ppdc.OTGroup512Test()})
	if err != nil {
		fmt.Println("trainer:", err)
		return
	}
	label, err := ppdc.Classify(trainer, []float64{0.5, 0.5}, rand.Reader)
	if err != nil {
		fmt.Println("classify:", err)
		return
	}
	fmt.Printf("class %+d\n", label)
	// Output: class +1
}

// ExampleEvaluateSimilarityPrivate compares two linear models without
// revealing either: identical models land on the metric's regularized
// floor.
func ExampleEvaluateSimilarityPrivate() {
	w := []float64{0.8, -0.6}
	res, err := ppdc.EvaluateSimilarityPrivate(w, 0.1, w, 0.1,
		ppdc.SimilarityParams{Group: ppdc.OTGroup512Test()}, rand.Reader)
	if err != nil {
		fmt.Println("similarity:", err)
		return
	}
	// ½·L0²·sin(θ0) with the default regularizers.
	fmt.Printf("identical models: 10⁶·T = %.0f\n", res.T*1e6)
	// Output: identical models: 10⁶·T = 109
}

// ExampleTrain shows the plaintext substrate: training and classifying
// without any privacy layer.
func ExampleTrain() {
	x := [][]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	y := []int{1, -1, -1, 1} // XOR: needs a nonlinear kernel
	model, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.PolynomialKernel(1, 1, 2), C: 10})
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	acc, err := model.Accuracy(x, y)
	if err != nil {
		fmt.Println("accuracy:", err)
		return
	}
	fmt.Printf("XOR training accuracy: %.0f%%\n", acc*100)
	// Output: XOR training accuracy: 100%
}
