package ppdc_test

// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md §4 for the experiment index) plus ablations over the design
// choices. `go test -bench=. -benchmem` runs them all; cmd/ppdc-bench
// prints the corresponding tables/series.
//
// Protocol benches use the 512-bit toy OT group so a full sweep stays
// tractable; BenchmarkAblation_OTGroupBits quantifies what production
// groups cost instead.

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"
	"testing"

	ppdc "repro"
	"repro/internal/attack"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/mvpoly"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/paillier"
	"repro/internal/similarity"
	"repro/internal/svm"
)

// fixtures caches trained models shared across benchmarks.
type fixtures struct {
	once sync.Once
	err  error

	diabetesTrain *dataset.Dataset
	diabetesTest  *dataset.Dataset
	linModel      *ppdc.Model
	polyModel     *ppdc.Model

	a1aTrain *dataset.Dataset
	a1aTest  *dataset.Dataset
	a1aLin   *ppdc.Model
	a1aPoly  *ppdc.Model
}

var bench fixtures

func setup(b *testing.B) *fixtures {
	b.Helper()
	bench.once.Do(func() {
		bench.err = bench.build()
	})
	if bench.err != nil {
		b.Fatal(bench.err)
	}
	return &bench
}

func (f *fixtures) build() error {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		return err
	}
	f.diabetesTrain, f.diabetesTest, err = dataset.Generate(spec, dataset.Options{Seed: 1})
	if err != nil {
		return err
	}
	f.linModel, err = svm.Train(f.diabetesTrain.X, f.diabetesTrain.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		return err
	}
	f.polyModel, err = svm.Train(f.diabetesTrain.X, f.diabetesTrain.Y, svm.Config{Kernel: svm.PaperPolynomial(spec.Dim), C: spec.PolyC})
	if err != nil {
		return err
	}
	aSpec, err := dataset.SpecByName("a1a")
	if err != nil {
		return err
	}
	aSpec.TrainSize = 400 // keep bench setup quick; Fig9's full run uses the catalog size
	f.a1aTrain, f.a1aTest, err = dataset.Generate(aSpec, dataset.Options{Seed: 1})
	if err != nil {
		return err
	}
	f.a1aLin, err = svm.Train(f.a1aTrain.X, f.a1aTrain.Y, svm.Config{Kernel: svm.Linear(), C: aSpec.LinC})
	if err != nil {
		return err
	}
	f.a1aPoly, err = svm.Train(f.a1aTrain.X, f.a1aTrain.Y, svm.Config{Kernel: svm.PaperPolynomial(aSpec.Dim), C: aSpec.PolyC})
	if err != nil {
		return err
	}
	return nil
}

func benchTrainer(b *testing.B, model *ppdc.Model, params classify.Params) (*classify.Trainer, *classify.Client) {
	b.Helper()
	if params.Group == nil {
		params.Group = ot.Group512Test()
	}
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		b.Fatal(err)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		b.Fatal(err)
	}
	return trainer, client
}

// --- Table I: training cost of the two kernels (the substrate the
// accuracy table rests on). ---

func BenchmarkTable1_TrainLinear(b *testing.B) {
	f := setup(b)
	spec, _ := dataset.SpecByName("diabetes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(f.diabetesTrain.X, f.diabetesTrain.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_TrainPolynomial(b *testing.B) {
	f := setup(b)
	spec, _ := dataset.SpecByName("diabetes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(f.diabetesTrain.X, f.diabetesTrain.Y, svm.Config{Kernel: svm.PaperPolynomial(spec.Dim), C: spec.PolyC}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 5: the collusion attack's cost per estimation attempt. ---

func BenchmarkFig5_ModelEstimation(b *testing.B) {
	opts := experiments.Options{Seed: 1, Group: ot.Group512Test()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(opts, []int{10}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6: exact recovery from n+1 unamplified values. ---

func BenchmarkFig6_ExactRecovery(b *testing.B) {
	samples := [][]float64{{0.1, 0.7}, {-0.5, 0.2}, {0.4, -0.6}}
	values := []float64{0.35, -0.21, 0.44}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := attack.RecoverExact(samples, values); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 7 / Fig. 8: per-query private classification (linear and
// nonlinear), the unit of the accuracy figures. ---

func BenchmarkFig7_PrivateLinearQuery(b *testing.B) {
	f := setup(b)
	trainer, client := benchTrainer(b, f.linModel, classify.Params{})
	sample := f.diabetesTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_PrivateNonlinearQuery(b *testing.B) {
	f := setup(b)
	trainer, client := benchTrainer(b, f.polyModel, classify.Params{})
	sample := f.diabetesTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 9: the four per-query series on the a-series data (123 dims).

func BenchmarkFig9_OriginalLinear(b *testing.B) {
	f := setup(b)
	sample := f.a1aTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.a1aLin.Classify(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_OriginalNonlinear(b *testing.B) {
	f := setup(b)
	sample := f.a1aTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.a1aPoly.Classify(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_PrivateLinear(b *testing.B) {
	f := setup(b)
	trainer, client := benchTrainer(b, f.a1aLin, classify.Params{})
	sample := f.a1aTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_PrivateNonlinear(b *testing.B) {
	f := setup(b)
	trainer, client := benchTrainer(b, f.a1aPoly, classify.Params{})
	sample := f.a1aTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II: one private similarity evaluation between two trained
// subset models. ---

func BenchmarkTable2_PrivateSimilarity(b *testing.B) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		b.Fatal(err)
	}
	subsets, err := dataset.GenerateShiftedSubsets(spec, 2, 192, []float64{0.5, 0}, dataset.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	type lin struct {
		w []float64
		c float64
	}
	models := make([]lin, 2)
	for i, sub := range subsets {
		m, err := svm.Train(sub.X, sub.Y, svm.Config{Kernel: svm.Linear(), C: 1})
		if err != nil {
			b.Fatal(err)
		}
		w, err := m.LinearWeights()
		if err != nil {
			b.Fatal(err)
		}
		models[i] = lin{w: w, c: m.Bias}
	}
	params := similarity.Params{Group: ot.Group512Test()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.EvaluatePrivate(models[0].w, models[0].c, models[1].w, models[1].c, params, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_KSBaseline(b *testing.B) {
	f := setup(b)
	half := f.diabetesTrain.Len() / 2
	a := f.diabetesTrain.X[:half]
	c := f.diabetesTrain.X[half:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ksAverage(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 10: similarity evaluation cost by dimension, both series. ---

func BenchmarkFig10_PrivateSimilarity(b *testing.B) {
	for _, dim := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			w1, c1 := planeForDim(dim, 1)
			w2, c2 := planeForDim(dim, 2)
			params := similarity.Params{Group: ot.Group512Test()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := similarity.EvaluatePrivate(w1, c1, w2, c2, params, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig10_OrdinarySimilarity(b *testing.B) {
	metric := similarity.DefaultMetric()
	for _, dim := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			w1, c1 := planeForDim(dim, 1)
			w2, c2 := planeForDim(dim, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := similarity.EvaluateLinear(w1, c1, w2, c2, metric); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations over the design choices DESIGN.md calls out. ---

// BenchmarkAblation_NonlinearDirectVsExpanded compares the paper's
// degree-p·q direct kernel evaluation against the expanded-τ linear form.
func BenchmarkAblation_NonlinearDirectVsExpanded(b *testing.B) {
	f := setup(b)
	sample := f.diabetesTest.X[0]
	for _, mode := range []classify.Mode{classify.ModeDirect, classify.ModeExpanded} {
		name := "direct"
		if mode == classify.ModeExpanded {
			name = "expanded"
		}
		b.Run(name, func(b *testing.B) {
			trainer, client := benchTrainer(b, f.polyModel, classify.Params{Mode: mode})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MaskingDegree sweeps the security parameter q.
func BenchmarkAblation_MaskingDegree(b *testing.B) {
	f := setup(b)
	sample := f.diabetesTest.X[0]
	for _, q := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			trainer, client := benchTrainer(b, f.linModel, classify.Params{MaskDegree: q})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_CoverFactor sweeps the decoy multiplier k (M = m·k).
func BenchmarkAblation_CoverFactor(b *testing.B) {
	f := setup(b)
	sample := f.diabetesTest.X[0]
	for _, k := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			trainer, client := benchTrainer(b, f.linModel, classify.Params{CoverFactor: k})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_OTGroupBits prices the oblivious transfer's security
// level.
func BenchmarkAblation_OTGroupBits(b *testing.B) {
	f := setup(b)
	sample := f.diabetesTest.X[0]
	groups := []ot.Group{ot.Group512Test(), ot.Group1024(), ot.Group1536(), ot.Group2048()}
	for _, g := range groups {
		b.Run(g.Name(), func(b *testing.B) {
			trainer, client := benchTrainer(b, f.linModel, classify.Params{Group: g})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_PaillierBaseline prices the Rahulamathavan-style
// homomorphic baseline the paper dismisses, per query, against our OMPE
// per-query cost (BenchmarkFig7_PrivateLinearQuery).
func BenchmarkAblation_PaillierBaseline(b *testing.B) {
	f := setup(b)
	w, err := f.linModel.LinearWeights()
	if err != nil {
		b.Fatal(err)
	}
	client, err := paillier.NewBaselineClient(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	trainer, err := paillier.NewBaselineTrainer(client.PublicKey(), w, f.linModel.Bias)
	if err != nil {
		b.Fatal(err)
	}
	sample := f.diabetesTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := client.EncryptSample(sample, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		ct, err := trainer.Classify(enc, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.DecryptLabel(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOMPE_Primitive isolates one oblivious polynomial evaluation of
// the core primitive (8-variate linear polynomial).
func BenchmarkOMPE_Primitive(b *testing.B) {
	fld := fieldDefault()
	w, err := fld.RandVec(rand.Reader, 8)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := linearEvalForBench(fld, w)
	if err != nil {
		b.Fatal(err)
	}
	params := ompe.Params{Field: fld, PolyDegree: 1, MaskDegree: 2, CoverFactor: 2, Group: ot.Group512Test()}
	input, err := fld.RandVec(rand.Reader, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ompe.Run(params, eval, input, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel engine: the -parallelism sweep over the concurrent masked
// evaluation + batch OT pipeline (DESIGN.md "Concurrency architecture"). ---

// parallelismSweepEvaluator builds the degree-2 bivariate polynomial the
// sweep evaluates: with MaskDegree 2 the composed degree is D = 4, m = 5
// genuine points, and CoverFactor 100 gives M = 500 masked pairs/query.
func parallelismSweepEvaluator(b *testing.B, fld *field.Field) ompe.Evaluator {
	b.Helper()
	p, err := mvpoly.New(fld, 2, []mvpoly.Term{
		{Coeff: big.NewInt(1), Exps: []uint{2, 0}},
		{Coeff: big.NewInt(3), Exps: []uint{1, 1}},
		{Coeff: big.NewInt(1), Exps: []uint{0, 1}},
		{Coeff: big.NewInt(5), Exps: []uint{0, 0}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkParallelism_OMPEEndToEnd runs one full nonlinear OMPE exchange
// with M = 500 pairs per query, sweeping the worker-pool bound on both
// endpoints. par=1 is the exact serial baseline (bit-identical messages
// given the same rng stream); higher degrees fan the masked evaluations,
// request construction, and batch-OT exponentiations across cores.
func BenchmarkParallelism_OMPEEndToEnd(b *testing.B) {
	fld := fieldDefault()
	eval := parallelismSweepEvaluator(b, fld)
	input, err := fld.RandVec(rand.Reader, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			params := ompe.Params{
				Field:       fld,
				PolyDegree:  2,
				MaskDegree:  2,
				CoverFactor: 100, // M = 500
				Group:       ot.Group512Test(),
				Parallelism: par,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ompe.Run(params, eval, input, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(params.TotalPairs())*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkParallelism_MaskedEvaluations isolates the sender's masked
// evaluation stage (no OT) across the same sweep: the pure-arithmetic
// region the worker pool chunks.
func BenchmarkParallelism_MaskedEvaluations(b *testing.B) {
	fld := fieldDefault()
	eval := parallelismSweepEvaluator(b, fld)
	input, err := fld.RandVec(rand.Reader, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			params := ompe.Params{
				Field:       fld,
				PolyDegree:  2,
				MaskDegree:  2,
				CoverFactor: 100, // M = 500
				Group:       ot.Group512Test(),
				Parallelism: par,
			}
			_, req, err := ompe.NewReceiver(params, input, rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ompe.MaskedEvaluations(params, eval, req, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(params.TotalPairs())*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkParallelism_PrivateNonlinearQuery sweeps the full classifier
// pipeline (trainer + client) on the diabetes polynomial model.
func BenchmarkParallelism_PrivateNonlinearQuery(b *testing.B) {
	f := setup(b)
	sample := f.diabetesTest.X[0]
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			trainer, client := benchTrainer(b, f.polyModel, classify.Params{Parallelism: par})
			client.SetParallelism(par)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := classify.ClassifyWith(trainer, client, sample, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9_PrivateLinearFast prices the IKNP fast session against
// BenchmarkFig9_PrivateLinear: after the one-time base phase, per-query
// cost drops to field arithmetic plus symmetric crypto.
func BenchmarkFig9_PrivateLinearFast(b *testing.B) {
	f := setup(b)
	trainer, _ := benchTrainer(b, f.a1aLin, classify.Params{})
	ft, fc, err := classify.NewFastPair(trainer, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	sample := f.a1aTest.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.ClassifyFast(ft, fc, sample, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastSessionBasePhase prices the one-time session setup the
// fast path amortizes.
func BenchmarkFastSessionBasePhase(b *testing.B) {
	f := setup(b)
	trainer, _ := benchTrainer(b, f.linModel, classify.Params{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := classify.NewFastPair(trainer, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
