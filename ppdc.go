// Package ppdc (privacy-preserving data classification) is the public API
// of this reproduction of "Privacy-preserving Data Classification and
// Similarity Evaluation for Distributed Systems" (Jia, Guo, Jin, Fang —
// ICDCS 2016).
//
// It exposes three capabilities:
//
//   - SVM training (a LIBSVM-equivalent SMO trainer with linear,
//     polynomial, RBF and sigmoid kernels) — the substrate the paper
//     builds on.
//   - Privacy-preserving classification: a trainer serves classification
//     queries without revealing its model; clients submit samples without
//     revealing them (paper §IV).
//   - Privacy-preserving similarity evaluation: two trainers compare
//     models through the isosceles-triangle metric without revealing them
//     (paper §V).
//
// Both protocols run in-process (Classify, EvaluateSimilarityPrivate) or
// across machines (Server / DialClassify / DialSimilarity). See README.md
// for a walkthrough and DESIGN.md for the architecture.
package ppdc

import (
	"io"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/ot"
	"repro/internal/svm"
)

// Model is a trained binary SVM: d(t) = Σ_s α_s·y_s·K(x_s, t) + b.
type Model = svm.Model

// Kernel selects and parameterizes a kernel function.
type Kernel = svm.Kernel

// TrainConfig holds SMO training hyperparameters.
type TrainConfig = svm.Config

// Scaler maps features into [-1, 1], the preprocessing the paper applies.
type Scaler = svm.Scaler

// Kernel constructors.
var (
	// LinearKernel is K(x,y) = x·y.
	LinearKernel = svm.Linear
	// PolynomialKernel is K(x,y) = (a0·x·y + b0)^degree.
	PolynomialKernel = svm.Polynomial
	// PaperPolynomialKernel is the paper's nonlinear default for an
	// n-dimensional dataset: a0 = 1/n, b0 = 0, p = 3.
	PaperPolynomialKernel = svm.PaperPolynomial
	// RBFKernel is K(x,y) = exp(−γ‖x−y‖²).
	RBFKernel = svm.RBF
	// SigmoidKernel is K(x,y) = tanh(a0·x·y + c0).
	SigmoidKernel = svm.Sigmoid
)

// Train fits a binary soft-margin SVM on samples x with labels y ∈ {+1,−1}.
func Train(x [][]float64, y []int, cfg TrainConfig) (*Model, error) {
	return svm.Train(x, y, cfg)
}

// FitScaler learns per-feature [-1,1] scaling from training data.
func FitScaler(x [][]float64) (*Scaler, error) { return svm.FitScaler(x) }

// ClassifyParams configures the privacy-preserving classification
// protocol. The zero value selects the paper's defaults: direct kernel
// evaluation, masking degree q=2, cover factor k=2, 64-bit amplifiers,
// and the 2048-bit MODP OT group.
type ClassifyParams = classify.Params

// Nonlinear evaluation forms.
const (
	// ModeDirect evaluates the kernel-form decision function obliviously
	// (the paper's §IV-B construction, masking degree p·q).
	ModeDirect = classify.ModeDirect
	// ModeExpanded linearizes a polynomial-kernel model over its τ
	// monomial variates and runs the linear protocol.
	ModeExpanded = classify.ModeExpanded
)

// Trainer is a model owner's protocol endpoint: it serves classification
// queries without revealing the model.
type Trainer = classify.Trainer

// Client is a sample owner's protocol endpoint: it submits queries without
// revealing the sample, learning only the predicted label.
type Client = classify.Client

// ClassifySpec is the public protocol contract a trainer publishes.
type ClassifySpec = classify.Spec

// NewTrainer wraps a trained model for privacy-preserving serving.
func NewTrainer(model *Model, params ClassifyParams) (*Trainer, error) {
	return classify.NewTrainer(model, params)
}

// NewClient derives a protocol client from a trainer's published spec.
func NewClient(spec ClassifySpec) (*Client, error) {
	return classify.NewClient(spec)
}

// Classify runs one complete in-process privacy-preserving classification
// and returns the ±1 label. Use rng = crypto/rand.Reader in production.
func Classify(t *Trainer, sample []float64, rng io.Reader) (int, error) {
	return classify.Classify(t, sample, rng)
}

// ClassifyWith reuses a client across many samples.
func ClassifyWith(t *Trainer, c *Client, sample []float64, rng io.Reader) (int, error) {
	return classify.ClassifyWith(t, c, sample, rng)
}

// ClassifyBatch classifies a set of samples, one protocol session each.
func ClassifyBatch(t *Trainer, samples [][]float64, rng io.Reader) ([]int, error) {
	return classify.ClassifyBatch(t, samples, rng)
}

// OT groups for protocol configuration.
var (
	// OTGroup512Test is a toy 512-bit group for tests and benchmarks.
	OTGroup512Test = ot.Group512Test
	// OTGroup1024 is the RFC 2409 Oakley Group 2 (legacy security).
	OTGroup1024 = ot.Group1024
	// OTGroup1536 is the RFC 3526 group 5.
	OTGroup1536 = ot.Group1536
	// OTGroup2048 is the RFC 3526 group 14 (recommended).
	OTGroup2048 = ot.Group2048
)

// Dataset is a labeled ±1 sample set.
type Dataset = dataset.Dataset

// DatasetSpec describes a synthetic stand-in for one of the paper's
// LIBSVM datasets.
type DatasetSpec = dataset.Spec

// DatasetOptions tunes synthetic generation.
type DatasetOptions = dataset.Options

// DatasetCatalog returns specs for the paper's Table I datasets.
func DatasetCatalog() []DatasetSpec { return dataset.Catalog() }

// GenerateDataset produces the train/test splits of a synthetic dataset.
func GenerateDataset(spec DatasetSpec, opts DatasetOptions) (train, test *Dataset, err error) {
	return dataset.Generate(spec, opts)
}

// LoadLIBSVM parses the sparse LIBSVM text format, so the paper's real
// datasets can be dropped in when available.
func LoadLIBSVM(r io.Reader, name string, dim int) (*Dataset, error) {
	return dataset.ParseLIBSVM(r, name, dim)
}

// MulticlassModel is a one-vs-one SVM ensemble over arbitrary integer
// labels — an extension beyond the paper's binary protocols, matching the
// multi-class scope of its closest related work [15].
type MulticlassModel = svm.MulticlassModel

// MulticlassTrainer serves a one-vs-one ensemble privately: one binary
// protocol per class pair, with the client voting locally.
type MulticlassTrainer = classify.MulticlassTrainer

// TrainMulticlass fits a one-vs-one ensemble on integer-labeled data.
func TrainMulticlass(x [][]float64, y []int, cfg TrainConfig) (*MulticlassModel, error) {
	return svm.TrainMulticlass(x, y, cfg)
}

// NewMulticlassTrainer wraps a trained ensemble for private serving.
func NewMulticlassTrainer(m *MulticlassModel, params ClassifyParams) (*MulticlassTrainer, error) {
	return classify.NewMulticlassTrainer(m, params)
}

// ClassifyMulticlass privately classifies a sample against a one-vs-one
// ensemble, returning the majority-vote class label.
func ClassifyMulticlass(mt *MulticlassTrainer, sample []float64, rng io.Reader) (int, error) {
	return classify.ClassifyMulticlass(mt, sample, rng)
}

// SaveModel serializes a model as JSON (stable format; see
// internal/svm/serialize.go).
func SaveModel(w io.Writer, m *Model) error { return svm.WriteModel(w, m) }

// LoadModel parses and validates a JSON-serialized model.
func LoadModel(r io.Reader) (*Model, error) { return svm.ReadModel(r) }

// SaveMulticlassModel serializes a one-vs-one ensemble as JSON.
func SaveMulticlassModel(w io.Writer, m *MulticlassModel) error {
	return svm.WriteMulticlassModel(w, m)
}

// LoadMulticlassModel parses and validates a JSON-serialized ensemble.
func LoadMulticlassModel(r io.Reader) (*MulticlassModel, error) {
	return svm.ReadMulticlassModel(r)
}

// FastTrainer and FastClient are an IKNP fast session's two endpoints:
// one oblivious-transfer base phase per session, then every
// classification query runs on field arithmetic and symmetric crypto
// alone (no public-key operations on the query path, two messages per
// query). Privacy guarantees match the one-shot path.
type (
	FastTrainer = classify.FastTrainer
	FastClient  = classify.FastClient
)

// NewFastPair runs the session base phase in memory and returns paired
// endpoints (single-process use; over the network use DialClassifyFast).
func NewFastPair(t *Trainer, rng io.Reader) (*FastTrainer, *FastClient, error) {
	return classify.NewFastPair(t, rng)
}

// ClassifyFast runs one fast-path classification in memory.
func ClassifyFast(ft *FastTrainer, fc *FastClient, sample []float64, rng io.Reader) (int, error) {
	return classify.ClassifyFast(ft, fc, sample, rng)
}
