package ppdc_test

import (
	"crypto/rand"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	ppdc "repro"
)

// toyData builds a small separable problem through the public API.
func toyData() ([][]float64, []int) {
	x := [][]float64{
		{0.8, 0.6}, {0.5, 0.9}, {0.9, 0.1}, {0.3, 0.4}, {0.7, -0.1}, {0.6, 0.5},
		{-0.8, -0.6}, {-0.5, -0.9}, {-0.9, -0.1}, {-0.3, -0.4}, {-0.7, 0.1}, {-0.6, -0.5},
	}
	y := []int{1, 1, 1, 1, 1, 1, -1, -1, -1, -1, -1, -1}
	return x, y
}

func TestPublicAPIEndToEnd(t *testing.T) {
	x, y := toyData()
	model, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{Group: ppdc.OTGroup512Test()})
	if err != nil {
		t.Fatal(err)
	}
	for i, sample := range x {
		want, err := model.Classify(sample)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ppdc.Classify(trainer, sample, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: %d vs %d", i, got, want)
		}
	}
}

func TestPublicAPIBatchAndClientReuse(t *testing.T) {
	x, y := toyData()
	model, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{Group: ppdc.OTGroup512Test()})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ppdc.ClassifyBatch(trainer, x[:4], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 {
		t.Fatalf("%d labels", len(labels))
	}
	client, err := ppdc.NewClient(trainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ppdc.ClassifyWith(trainer, client, x[0], rand.Reader); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimilarityAPI(t *testing.T) {
	x, y := toyData()
	modelA, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		t.Fatal(err)
	}
	// A rotated variant as model B.
	xB := make([][]float64, len(x))
	for i, row := range x {
		xB[i] = []float64{row[0]*0.9 - row[1]*0.3, row[0]*0.3 + row[1]*0.9}
	}
	modelB, err := ppdc.Train(xB, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		t.Fatal(err)
	}
	metric := ppdc.DefaultSimilarityMetric()
	plain, err := ppdc.EvaluateModelSimilarity(modelA, modelB, metric)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := ppdc.EvaluateModelSimilarityPrivate(modelA, modelB,
		ppdc.SimilarityParams{Group: ppdc.OTGroup512Test()}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.TSquared-priv.TSquared) > 1e-4*(1+plain.TSquared) {
		t.Fatalf("similarity mismatch: %g vs %g", plain.TSquared, priv.TSquared)
	}
	self, err := ppdc.EvaluateModelSimilarity(modelA, modelA, metric)
	if err != nil {
		t.Fatal(err)
	}
	if self.T >= plain.T {
		t.Fatalf("self-similarity %g should be below cross-similarity %g", self.T, plain.T)
	}
}

func TestPublicNetworkAPI(t *testing.T) {
	x, y := toyData()
	model, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{Group: ppdc.OTGroup512Test()})
	if err != nil {
		t.Fatal(err)
	}
	srv := ppdc.NewServer(trainer)
	srv.Logf = t.Logf
	w, err := model.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableSimilarity(w, model.Bias, ppdc.SimilarityParams{Group: ppdc.OTGroup512Test()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	client, err := ppdc.DialClassify(ln.Addr().String(), 5*time.Second, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	label, err := client.Classify(x[0])
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Fatalf("label = %d", label)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := ppdc.DialSimilarity(ln.Addr().String(), w, model.Bias, 5*time.Second, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Same model on both sides: the regularized floor.
	floor := 0.5 * 0.05 * 0.05 * math.Sin(math.Pi/36)
	if math.Abs(res.T-floor) > 1e-3 {
		t.Fatalf("self similarity over network T=%g, want ~%g", res.T, floor)
	}
}

func TestPublicDatasetAPI(t *testing.T) {
	catalog := ppdc.DatasetCatalog()
	if len(catalog) != 17 {
		t.Fatalf("catalog has %d datasets, want the paper's 17", len(catalog))
	}
	spec := catalog[0]
	spec.TrainSize, spec.TestSize = 30, 10
	train, test, err := ppdc.GenerateDataset(spec, ppdc.DatasetOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 30 || test.Len() != 10 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	parsed, err := ppdc.LoadLIBSVM(strings.NewReader("+1 1:0.5 2:-1\n-1 2:0.25\n"), "inline", 0)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 2 || parsed.Dim() != 2 {
		t.Fatalf("parsed %dx%d", parsed.Len(), parsed.Dim())
	}
}

func TestPublicScalerAPI(t *testing.T) {
	s, err := ppdc.FitScaler([][]float64{{0, 4}, {2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Apply([]float64{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("scaled = %v", out)
	}
}

func TestSimilarityMatrix(t *testing.T) {
	x, y := toyData()
	var models []*ppdc.Model
	for rot := 0; rot < 3; rot++ {
		xr := make([][]float64, len(x))
		c, s := math.Cos(0.3*float64(rot)), math.Sin(0.3*float64(rot))
		for i, row := range x {
			xr[i] = []float64{c*row[0] - s*row[1], s*row[0] + c*row[1]}
		}
		m, err := ppdc.Train(xr, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	mat, err := ppdc.SimilarityMatrix(models, ppdc.SimilarityParams{Group: ppdc.OTGroup512Test()}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(mat) != 3 {
		t.Fatalf("matrix size %d", len(mat))
	}
	for i := range mat {
		for j := range mat {
			if mat[i][j] != mat[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Farther rotation = bigger metric.
	if !(mat[0][1] < mat[0][2]) {
		t.Fatalf("similarity ordering wrong: T(0,1)=%g, T(0,2)=%g", mat[0][1], mat[0][2])
	}
	// Diagonal at the regularized floor, below any off-diagonal entry.
	if mat[0][0] >= mat[0][1] {
		t.Fatalf("diagonal %g not below off-diagonal %g", mat[0][0], mat[0][1])
	}
}
