package ppdc

import (
	"context"
	"io"
	"net"
	"time"

	"repro/internal/transport"
)

// DialOptions configures dial retry/backoff and per-message deadlines for
// the network clients. The zero value selects the defaults documented in
// the transport package (10s dial attempts, 3 attempts with exponential
// backoff + jitter, 2-minute message deadline).
type DialOptions = transport.Options

// Typed transport errors, for callers that branch on failure modes.
var (
	// ErrRemote marks a failure reported by the peer.
	ErrRemote = transport.ErrRemote
	// ErrTimeout marks a message exchange that exceeded its deadline.
	ErrTimeout = transport.ErrTimeout
	// ErrCanceled marks a session abandoned by context cancellation.
	ErrCanceled = transport.ErrCanceled
	// ErrServerBusy is reported (via ErrRemote) to clients rejected by a
	// server's MaxSessions cap.
	ErrServerBusy = transport.ErrServerBusy
	// ErrShuttingDown is reported (via ErrRemote) to clients that connect
	// while the server drains.
	ErrShuttingDown = transport.ErrShuttingDown
)

// NoDeadline disables the per-message deadline when assigned to
// DialOptions.MessageDeadline or Server.MessageDeadline.
const NoDeadline = transport.NoDeadline

// Server hosts a trainer's protocol endpoints over real connections:
// privacy-preserving classification and, when enabled, linear similarity
// evaluation. It serves concurrent sessions.
type Server = transport.Server

// NetworkClient drives the classification protocol against a remote
// trainer.
type NetworkClient = transport.ClassifyClient

// NewServer builds a protocol server around a trainer.
func NewServer(t *Trainer) *Server { return transport.NewServer(t) }

// DialClassify connects to a trainer server over TCP, performing the
// spec handshake.
func DialClassify(addr string, timeout time.Duration, rng io.Reader) (*NetworkClient, error) {
	return transport.DialClassify(addr, timeout, rng)
}

// DialSimilarity runs a full private similarity evaluation as Bob against
// a TCP server hosting model A, using Bob's own linear model (wB, bB).
func DialSimilarity(addr string, wB []float64, bB float64, timeout time.Duration, rng io.Reader) (*SimilarityResult, error) {
	return transport.DialSimilarity(addr, wB, bB, timeout, rng)
}

// DialKernelSimilarity runs a kernelized (§V-C) private similarity
// evaluation as Bob against a TCP server hosting a polynomial-kernel
// model, using Bob's own model.
func DialKernelSimilarity(addr string, modelB *Model, timeout time.Duration, rng io.Reader) (*SimilarityResult, error) {
	return transport.DialKernelSimilarity(addr, modelB, timeout, rng)
}

// Serve is a convenience: listen on addr and serve until the listener
// fails or the server is closed.
func Serve(s *Server, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// FastNetworkClient drives the IKNP fast classification session against a
// remote trainer: one base phase at dial time, two messages per query.
type FastNetworkClient = transport.FastClassifyClient

// DialClassifyFast connects to a trainer server over TCP and runs the
// fast session's base phase.
func DialClassifyFast(addr string, timeout time.Duration, rng io.Reader) (*FastNetworkClient, error) {
	return transport.DialClassifyFast(addr, timeout, rng)
}

// DialClassifyContext is DialClassify with retry/backoff and deadlines
// from opts, and the handshake bounded by ctx.
func DialClassifyContext(ctx context.Context, addr string, opts DialOptions, rng io.Reader) (*NetworkClient, error) {
	return transport.DialClassifyContext(ctx, addr, opts, rng)
}

// DialClassifyFastContext is DialClassifyFast with retry/backoff and
// deadlines from opts, and the base phase bounded by ctx.
func DialClassifyFastContext(ctx context.Context, addr string, opts DialOptions, rng io.Reader) (*FastNetworkClient, error) {
	return transport.DialClassifyFastContext(ctx, addr, opts, rng)
}

// DialSimilarityContext is DialSimilarity with retry/backoff and
// deadlines from opts, and the whole evaluation bounded by ctx.
func DialSimilarityContext(ctx context.Context, addr string, wB []float64, bB float64, opts DialOptions, rng io.Reader) (*SimilarityResult, error) {
	return transport.DialSimilarityContext(ctx, addr, wB, bB, opts, rng)
}

// DialKernelSimilarityContext is DialKernelSimilarity with retry/backoff
// and deadlines from opts, and the whole evaluation bounded by ctx.
func DialKernelSimilarityContext(ctx context.Context, addr string, modelB *Model, opts DialOptions, rng io.Reader) (*SimilarityResult, error) {
	return transport.DialKernelSimilarityContext(ctx, addr, modelB, opts, rng)
}
