package ppdc

import (
	"io"
	"net"
	"time"

	"repro/internal/transport"
)

// Server hosts a trainer's protocol endpoints over real connections:
// privacy-preserving classification and, when enabled, linear similarity
// evaluation. It serves concurrent sessions.
type Server = transport.Server

// NetworkClient drives the classification protocol against a remote
// trainer.
type NetworkClient = transport.ClassifyClient

// NewServer builds a protocol server around a trainer.
func NewServer(t *Trainer) *Server { return transport.NewServer(t) }

// DialClassify connects to a trainer server over TCP, performing the
// spec handshake.
func DialClassify(addr string, timeout time.Duration, rng io.Reader) (*NetworkClient, error) {
	return transport.DialClassify(addr, timeout, rng)
}

// DialSimilarity runs a full private similarity evaluation as Bob against
// a TCP server hosting model A, using Bob's own linear model (wB, bB).
func DialSimilarity(addr string, wB []float64, bB float64, timeout time.Duration, rng io.Reader) (*SimilarityResult, error) {
	return transport.DialSimilarity(addr, wB, bB, timeout, rng)
}

// DialKernelSimilarity runs a kernelized (§V-C) private similarity
// evaluation as Bob against a TCP server hosting a polynomial-kernel
// model, using Bob's own model.
func DialKernelSimilarity(addr string, modelB *Model, timeout time.Duration, rng io.Reader) (*SimilarityResult, error) {
	return transport.DialKernelSimilarity(addr, modelB, timeout, rng)
}

// Serve is a convenience: listen on addr and serve until the listener
// fails or the server is closed.
func Serve(s *Server, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// FastNetworkClient drives the IKNP fast classification session against a
// remote trainer: one base phase at dial time, two messages per query.
type FastNetworkClient = transport.FastClassifyClient

// DialClassifyFast connects to a trainer server over TCP and runs the
// fast session's base phase.
func DialClassifyFast(addr string, timeout time.Duration, rng io.Reader) (*FastNetworkClient, error) {
	return transport.DialClassifyFast(addr, timeout, rng)
}
