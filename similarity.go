package ppdc

import (
	"io"

	"repro/internal/similarity"
	"repro/internal/svm"
)

// SimilarityMetric fixes the public evaluation geometry: the data box
// [α, β]ⁿ and the regularizers L0, θ0 of the triangle metric (Eq. 4).
type SimilarityMetric = similarity.Metric

// SimilarityParams configures the private similarity protocol.
type SimilarityParams = similarity.Params

// SimilarityResult carries T (smaller = more similar models), T², and —
// for plaintext evaluations — the underlying L and cos θ.
type SimilarityResult = similarity.Result

// DefaultSimilarityMetric returns the paper's geometry: box [−1,1],
// L0 = 0.05, θ0 = 5°.
func DefaultSimilarityMetric() SimilarityMetric { return similarity.DefaultMetric() }

// EvaluateSimilarity computes the triangle metric between two linear
// models in the clear (the paper's "ordinary evaluation" baseline).
func EvaluateSimilarity(wA []float64, bA float64, wB []float64, bB float64, m SimilarityMetric) (*SimilarityResult, error) {
	return similarity.EvaluateLinear(wA, bA, wB, bB, m)
}

// EvaluateSimilarityPrivate runs the paper's three-round private protocol
// between two linear models in process and returns Bob's result.
func EvaluateSimilarityPrivate(wA []float64, bA float64, wB []float64, bB float64, params SimilarityParams, rng io.Reader) (*SimilarityResult, error) {
	return similarity.EvaluatePrivate(wA, bA, wB, bB, params, rng)
}

// EvaluateModelSimilarity computes the metric between two trained models
// in the clear, dispatching on the kernel: linear models use the closed
// form, kernel models the feature-space form of §V-C.
func EvaluateModelSimilarity(a, b *Model, m SimilarityMetric) (*SimilarityResult, error) {
	if a.Kernel.Kind == svm.KernelLinear && b.Kernel.Kind == svm.KernelLinear {
		wA, err := a.LinearWeights()
		if err != nil {
			return nil, err
		}
		wB, err := b.LinearWeights()
		if err != nil {
			return nil, err
		}
		return similarity.EvaluateLinear(wA, a.Bias, wB, b.Bias, m)
	}
	return similarity.EvaluateKernel(a, b, m)
}

// EvaluateModelSimilarityPrivate runs the private protocol between two
// trained models in process, dispatching on the kernel.
func EvaluateModelSimilarityPrivate(a, b *Model, params SimilarityParams, rng io.Reader) (*SimilarityResult, error) {
	if a.Kernel.Kind == svm.KernelLinear && b.Kernel.Kind == svm.KernelLinear {
		wA, err := a.LinearWeights()
		if err != nil {
			return nil, err
		}
		wB, err := b.LinearWeights()
		if err != nil {
			return nil, err
		}
		return similarity.EvaluatePrivate(wA, a.Bias, wB, b.Bias, params, rng)
	}
	return similarity.EvaluatePrivateKernel(a, b, params, rng)
}

// SimilarityMatrix computes the pairwise private similarity metric among a
// set of linear models (e.g., a consortium of trainers ranking potential
// partners). Entry [i][j] is T between models i and j; the diagonal is the
// metric's regularized floor. Each pair runs its own three-round protocol
// with fresh randomizers.
func SimilarityMatrix(models []*Model, params SimilarityParams, rng io.Reader) ([][]float64, error) {
	n := len(models)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			res, err := EvaluateModelSimilarityPrivate(models[i], models[j], params, rng)
			if err != nil {
				return nil, err
			}
			out[i][j] = res.T
			out[j][i] = res.T
		}
	}
	return out, nil
}
